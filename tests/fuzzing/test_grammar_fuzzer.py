"""Tests for the grammar-based fuzzer (§8.3)."""

import random

import pytest

from repro.fuzzing.grammar_fuzzer import GrammarFuzzer
from repro.languages.cfg import Grammar, Nonterminal, Production
from repro.languages.earley import recognize

S = Nonterminal("S")


def paren_grammar() -> Grammar:
    return Grammar(
        S,
        [
            Production(S, ()),
            Production(S, ("(", S, ")", S)),
        ],
    )


class TestConstruction:
    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            GrammarFuzzer(paren_grammar(), [])

    def test_requires_parseable_seed(self):
        with pytest.raises(ValueError):
            GrammarFuzzer(paren_grammar(), ["((("])

    def test_unparseable_seeds_recorded(self):
        fuzzer = GrammarFuzzer(paren_grammar(), ["()", ")("])
        assert fuzzer.unparsed_seeds == [")("]
        assert len(fuzzer.seed_trees) == 1


class TestGeneration:
    def test_outputs_stay_in_grammar_language(self):
        grammar = paren_grammar()
        fuzzer = GrammarFuzzer(
            grammar, ["(())", "()()"], random.Random(0)
        )
        for text in fuzzer.generate(150):
            assert recognize(grammar, text), text

    def test_deterministic_with_seeded_rng(self):
        grammar = paren_grammar()
        first = GrammarFuzzer(grammar, ["()"], random.Random(5))
        second = GrammarFuzzer(grammar, ["()"], random.Random(5))
        assert first.generate(25) == second.generate(25)

    def test_produces_inputs_beyond_seeds(self):
        grammar = paren_grammar()
        fuzzer = GrammarFuzzer(grammar, ["()"], random.Random(1))
        outputs = set(fuzzer.generate(200))
        assert outputs - {"()"}  # mutation does generalize

    def test_zero_mutation_budget_reproduces_seeds(self):
        grammar = paren_grammar()
        fuzzer = GrammarFuzzer(
            grammar, ["(())"], random.Random(2), max_mutations=0
        )
        assert set(fuzzer.generate(10)) == {"(())"}

    def test_iterator_protocol(self):
        fuzzer = GrammarFuzzer(paren_grammar(), ["()"], random.Random(3))
        stream = iter(fuzzer)
        values = [next(stream) for _ in range(5)]
        assert len(values) == 5
