"""Round-trip and canonical-form tests for the suite metrics artifact."""

import json

import pytest

from repro.artifacts.schema import ArtifactError
from repro.artifacts.suite import (
    SUITE_KIND,
    SUITE_SCHEMA_VERSION,
    SubjectMetrics,
    SubjectPerf,
    SuiteParams,
    SuiteResult,
    canonical_metrics_bytes,
    load_suite,
    save_suite,
)


def make_suite() -> SuiteResult:
    return SuiteResult(
        subjects=["sed", "grep"],
        params=SuiteParams(eval_samples=10, fuzz_samples=12, rng_seed=3),
        metrics={
            "sed": SubjectMetrics(
                grammar_digest="ab" * 32,
                grammar_productions=7,
                oracle_queries=100,
                unique_queries=90,
                seeds_used=5,
                seeds_skipped=2,
                precision=0.75,
                recall=1.0,
                fuzz_valid_fraction=0.5,
                fuzz_new_lines=13,
                sample_valid=True,
                sample_length=41,
            ),
            "grep": SubjectMetrics(grammar_digest="cd" * 32),
        },
        perf={
            "sed": SubjectPerf(
                synthesis_seconds=1.5,
                metrics_seconds=0.2,
                speculative_queries=4,
            ),
            "grep": SubjectPerf(synthesis_seconds=0.3),
        },
        execution={"jobs": 2, "backend": "process"},
        environment={"python": "3.11.0", "platform": "linux"},
    )


class TestRoundTrip:
    def test_to_from_dict_is_identity(self):
        suite = make_suite()
        again = SuiteResult.from_dict(suite.to_dict())
        assert again == suite

    def test_dict_is_json_compatible(self):
        payload = json.dumps(make_suite().to_dict(), sort_keys=True)
        again = SuiteResult.from_dict(json.loads(payload))
        assert again == make_suite()

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_suite.json"
        save_suite(make_suite(), path)
        assert load_suite(path) == make_suite()

    def test_kind_recorded(self):
        data = make_suite().to_dict()
        assert data["kind"] == SUITE_KIND
        assert data["schema_version"] == SUITE_SCHEMA_VERSION


class TestValidation:
    def test_rejects_wrong_kind(self):
        data = make_suite().to_dict()
        data["kind"] = "glade-run"
        with pytest.raises(ArtifactError, match="kind"):
            SuiteResult.from_dict(data)

    def test_rejects_unknown_schema_version(self):
        data = make_suite().to_dict()
        data["schema_version"] = SUITE_SCHEMA_VERSION + 1
        with pytest.raises(ArtifactError, match="schema version"):
            SuiteResult.from_dict(data)

    def test_rejects_malformed_metrics(self):
        data = make_suite().to_dict()
        data["metrics"]["sed"]["no_such_field"] = 1
        with pytest.raises(ArtifactError, match="malformed"):
            SuiteResult.from_dict(data)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_suite(path)


class TestCanonicalBytes:
    def test_covers_deterministic_sections_only(self):
        """Perf/execution/environment must not leak into the bytes CI
        compares across job counts — those legitimately vary."""
        one = make_suite()
        two = make_suite()
        two.perf["sed"].synthesis_seconds = 99.0
        two.execution["jobs"] = 8
        two.environment["python"] = "3.12.1"
        assert canonical_metrics_bytes(one) == canonical_metrics_bytes(two)

    def test_detects_metric_changes(self):
        one = make_suite()
        two = make_suite()
        two.metrics["sed"].oracle_queries += 1
        assert canonical_metrics_bytes(one) != canonical_metrics_bytes(two)

    def test_detects_param_changes(self):
        one = make_suite()
        two = make_suite()
        two.params.rng_seed += 1
        assert canonical_metrics_bytes(one) != canonical_metrics_bytes(two)
