"""Artifact-test fixtures.

The quality-floor tests elsewhere in the suite are sensitive to the
global star-id counter (phase-2 residual sampling is seeded by star
ids, see the gotcha in `.claude/skills/verify/SKILL.md`). Tests here
create stars — via learning runs and tree deserialization (which also
*reserves* ids) — so each one restores the counter afterwards, keeping
the rest of the suite's counter trajectory exactly what it was before
this directory existed.
"""

import pytest

from repro.core import gtree


@pytest.fixture(autouse=True)
def preserve_star_counter():
    saved = gtree._star_counter.next_id
    yield
    gtree._star_counter.next_id = saved
