"""Older-schema artifacts load (and resume) under the current build.

Checkpoints are the one thing the artifact subsystem exists to
preserve, so schema bumps upgrade known older documents in place
instead of refusing them: v1 → v2 re-indexes phase-1 results, v2 → v3
merely lacks the optional ``phase2_progress`` record. Old documents
are simulated by downgrading a real current one: stripping every
newer-than-X field, exactly what the PR-2 / PR-3 builds wrote.
"""

import json

import pytest

from repro.artifacts import (
    SCHEMA_VERSION,
    ArtifactError,
    MemoryCheckpointStore,
    RunArtifact,
    SEED_USED,
    SEED_VALIDATED,
)
from repro.core.glade import GladeConfig
from repro.core.pipeline import LearningPipeline

from tests.core.helpers import XML_ALPHABET, xml_like_oracle

SEEDS = ["<a>ab</a>", "xy"]


def downgrade_to_v2(data):
    """Strip every v3-only field, producing what a PR-3 build wrote."""
    v2 = json.loads(json.dumps(data))
    v2["schema_version"] = 2
    v2.pop("phase2_progress", None)
    return v2


def downgrade_to_v1(data):
    """Strip every v2-only field, producing what a PR-2 build wrote."""
    v1 = downgrade_to_v2(data)
    v1["schema_version"] = 1
    v1.pop("speculative_queries", None)
    v1.pop("execution", None)
    for seed in v1["seeds"]:
        seed.pop("seconds", None)
    for result in v1["phase1_results"]:
        result.pop("seed_index", None)
    for key in ("jobs", "backend"):
        v1["config"].pop(key, None)
    return v1


@pytest.fixture(scope="module")
def finished():
    config = GladeConfig(alphabet=XML_ALPHABET)
    store = MemoryCheckpointStore()
    pipeline = LearningPipeline(xml_like_oracle, config=config, store=store)
    return pipeline.run(SEEDS), store


def test_complete_v1_artifact_loads(finished):
    artifact, _store = finished
    v1 = downgrade_to_v1(artifact.to_dict())
    restored = RunArtifact.from_dict(v1)
    # Results are re-indexed against the used seeds, in order.
    used = [
        i for i, s in enumerate(restored.seeds) if s.state == SEED_USED
    ]
    assert [r.seed_index for r in restored.phase1_results] == used
    assert str(restored.grammar) == str(artifact.grammar)
    assert restored.schema_version == artifact.schema_version
    # Re-saving writes the current schema.
    assert restored.to_dict()["schema_version"] == SCHEMA_VERSION


def test_complete_v2_artifact_loads(finished):
    artifact, _store = finished
    v2 = downgrade_to_v2(artifact.to_dict())
    restored = RunArtifact.from_dict(v2)
    assert str(restored.grammar) == str(artifact.grammar)
    assert restored.phase2_progress == {}
    assert restored.to_dict()["schema_version"] == SCHEMA_VERSION


def test_in_progress_v2_artifact_resumes(finished):
    """A v2 checkpoint (no phase-2 progress record) resumes: phase 2
    re-runs from its start, ending in the same grammar and totals."""
    artifact, store = finished
    snapshot = None
    for index in range(len(store.snapshots)):
        candidate = store.snapshot(index)
        if candidate.stage == "translate":
            snapshot = candidate
            break
    assert snapshot is not None
    restored = RunArtifact.from_dict(downgrade_to_v2(snapshot.to_dict()))
    resumed = LearningPipeline(
        xml_like_oracle, config=restored.config
    ).resume(restored)
    assert resumed.status == "complete"
    assert str(resumed.grammar) == str(artifact.grammar)
    assert resumed.oracle_queries == artifact.oracle_queries


def test_in_progress_v1_artifact_resumes(finished):
    artifact, store = finished
    snapshot = None
    for index in range(len(store.snapshots)):
        candidate = store.snapshot(index)
        if any(s.state == SEED_USED for s in candidate.seeds) and any(
            s.state == SEED_VALIDATED for s in candidate.seeds
        ):
            snapshot = candidate
            break
    assert snapshot is not None
    v1 = downgrade_to_v1(snapshot.to_dict())
    restored = RunArtifact.from_dict(v1)
    resumed = LearningPipeline(
        xml_like_oracle, config=restored.config
    ).resume(restored)
    assert resumed.status == "complete"
    assert str(resumed.grammar) == str(artifact.grammar)


def test_v1_with_mismatched_results_rejected(finished):
    artifact, _store = finished
    v1 = downgrade_to_v1(artifact.to_dict())
    v1["phase1_results"].append(v1["phase1_results"][0])
    with pytest.raises(ArtifactError, match="cannot upgrade"):
        RunArtifact.from_dict(v1)


def test_unknown_version_still_rejected(finished):
    artifact, _store = finished
    data = artifact.to_dict()
    data["schema_version"] = 999
    with pytest.raises(ArtifactError, match="schema version"):
        RunArtifact.from_dict(data)
