"""Schema-v1 artifacts load (and resume) under the v2 build.

Checkpoints are the one thing the artifact subsystem exists to
preserve, so the v2 schema bump upgrades v1 documents in place instead
of refusing them. A v1 document is simulated by downgrading a real v2
one: stripping every v2-only field, exactly what a PR-2 build wrote.
"""

import json

import pytest

from repro.artifacts import (
    ArtifactError,
    MemoryCheckpointStore,
    RunArtifact,
    SEED_USED,
    SEED_VALIDATED,
)
from repro.core.glade import GladeConfig
from repro.core.pipeline import LearningPipeline

from tests.core.helpers import XML_ALPHABET, xml_like_oracle

SEEDS = ["<a>ab</a>", "xy"]


def downgrade_to_v1(data):
    """Strip every v2-only field, producing what a PR-2 build wrote."""
    v1 = json.loads(json.dumps(data))
    v1["schema_version"] = 1
    v1.pop("speculative_queries", None)
    v1.pop("execution", None)
    for seed in v1["seeds"]:
        seed.pop("seconds", None)
    for result in v1["phase1_results"]:
        result.pop("seed_index", None)
    for key in ("jobs", "backend"):
        v1["config"].pop(key, None)
    return v1


@pytest.fixture(scope="module")
def finished():
    config = GladeConfig(alphabet=XML_ALPHABET)
    store = MemoryCheckpointStore()
    pipeline = LearningPipeline(xml_like_oracle, config=config, store=store)
    return pipeline.run(SEEDS), store


def test_complete_v1_artifact_loads(finished):
    artifact, _store = finished
    v1 = downgrade_to_v1(artifact.to_dict())
    restored = RunArtifact.from_dict(v1)
    # Results are re-indexed against the used seeds, in order.
    used = [
        i for i, s in enumerate(restored.seeds) if s.state == SEED_USED
    ]
    assert [r.seed_index for r in restored.phase1_results] == used
    assert str(restored.grammar) == str(artifact.grammar)
    assert restored.schema_version == artifact.schema_version
    # Re-saving writes the current schema.
    assert restored.to_dict()["schema_version"] == 2


def test_in_progress_v1_artifact_resumes(finished):
    artifact, store = finished
    snapshot = None
    for index in range(len(store.snapshots)):
        candidate = store.snapshot(index)
        if any(s.state == SEED_USED for s in candidate.seeds) and any(
            s.state == SEED_VALIDATED for s in candidate.seeds
        ):
            snapshot = candidate
            break
    assert snapshot is not None
    v1 = downgrade_to_v1(snapshot.to_dict())
    restored = RunArtifact.from_dict(v1)
    resumed = LearningPipeline(
        xml_like_oracle, config=restored.config
    ).resume(restored)
    assert resumed.status == "complete"
    assert str(resumed.grammar) == str(artifact.grammar)


def test_v1_with_mismatched_results_rejected(finished):
    artifact, _store = finished
    v1 = downgrade_to_v1(artifact.to_dict())
    v1["phase1_results"].append(v1["phase1_results"][0])
    with pytest.raises(ArtifactError, match="cannot upgrade"):
        RunArtifact.from_dict(v1)


def test_unknown_version_still_rejected(finished):
    artifact, _store = finished
    data = artifact.to_dict()
    data["schema_version"] = 999
    with pytest.raises(ArtifactError, match="schema version"):
        RunArtifact.from_dict(data)
