"""Round-trip tests for the artifact schema.

Acceptance criterion: ``from_dict(to_dict(x))`` is semantically
identical for regexes, generalization trees, and grammars. For regexes
and grammars we prove the stronger structural property (structural
equality implies semantic identity); for trees we verify shape,
contexts, character classes, star ids, and the derived regex.

Every round trip is pushed through ``json.dumps``/``json.loads`` so the
encoding is known to survive an actual file write, not just a dict
copy.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.artifacts.schema import (
    ArtifactError,
    grammar_from_dict,
    grammar_to_dict,
    gtree_from_dict,
    gtree_to_dict,
    phase1_result_from_dict,
    phase1_result_to_dict,
    phase2_result_from_dict,
    phase2_result_to_dict,
    regex_from_dict,
    regex_to_dict,
)
from repro.core.context import Context
from repro.core.glade import GladeConfig, learn_grammar
from repro.core.gtree import GAlt, GConcat, GConst, GRoot, GStar, stars_of
from repro.languages import regex as rx
from repro.languages.cfg import CharSet, Grammar, Nonterminal, Production

from tests.core.helpers import xml_like_oracle


def json_roundtrip(data):
    return json.loads(json.dumps(data))


# --------------------------------------------------------------------------
# Regexes

_ALPHABET = "ab<>/"


def regex_trees(max_leaves: int = 6):
    leaves = st.one_of(
        st.text(alphabet=_ALPHABET, min_size=1, max_size=3).map(rx.Lit),
        st.just(rx.EPSILON),
        st.just(rx.EMPTY),
        st.sets(
            st.sampled_from(list(_ALPHABET)), min_size=1, max_size=4
        ).map(lambda chars: rx.CharClass(frozenset(chars))),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(rx.Concat),
            st.lists(children, min_size=2, max_size=3).map(rx.Alt),
            children.map(rx.Star),
        ),
        max_leaves=max_leaves,
    )


@given(expr=regex_trees())
@settings(max_examples=200, deadline=None)
def test_regex_roundtrip_structurally_identical(expr):
    restored = regex_from_dict(json_roundtrip(regex_to_dict(expr)))
    # Structural equality (Regex.__eq__) implies semantic identity.
    assert restored == expr
    assert str(restored) == str(expr)
    # And the encoding itself is stable (canonical).
    assert regex_to_dict(restored) == regex_to_dict(expr)


@given(expr=regex_trees(), probe=st.text(alphabet=_ALPHABET, max_size=8))
@settings(max_examples=100, deadline=None)
def test_regex_roundtrip_semantically_identical(expr, probe):
    restored = regex_from_dict(json_roundtrip(regex_to_dict(expr)))
    assert restored.matches(probe) == expr.matches(probe)


def test_regex_unknown_tag_rejected():
    with pytest.raises(ArtifactError, match="unknown regex tag"):
        regex_from_dict({"t": "nope"})
    with pytest.raises(ArtifactError, match="malformed"):
        regex_from_dict(["not", "a", "node"])


# --------------------------------------------------------------------------
# Generalization trees


def sample_tree() -> GRoot:
    const = GConst("ab", Context("<", ">"))
    const.classes[1] = {"b", "c", "d"}
    star = GStar(
        inner=GAlt([GConst("x", Context("<", ">")), const]),
        rep_string="xab",
        context=Context("", "tail"),
    )
    return GRoot(GConcat([GConst("pre", Context("", "")), star]))


def assert_trees_equal(a, b):
    assert type(a) is type(b)
    if isinstance(a, GConst):
        assert a.base_text == b.base_text
        assert a.context == b.context
        assert a.classes == b.classes
    if isinstance(a, GStar):
        assert a.star_id == b.star_id
        assert a.rep_string == b.rep_string
        assert a.context == b.context
    assert len(a.children) == len(b.children)
    for ca, cb in zip(a.children, b.children):
        assert_trees_equal(ca, cb)


def test_gtree_roundtrip_manual_tree():
    tree = sample_tree()
    restored = gtree_from_dict(json_roundtrip(gtree_to_dict(tree)))
    assert_trees_equal(tree, restored)
    assert restored.to_regex() == tree.to_regex()


def test_gtree_roundtrip_learned_trees():
    config = GladeConfig(alphabet="ab<>/", record_trace=True)
    result = learn_grammar(["<a>ab</a>"], xml_like_oracle, config)
    for p1 in result.phase1_results:
        data = json_roundtrip(phase1_result_to_dict(p1))
        restored = phase1_result_from_dict(data)
        assert_trees_equal(p1.root, restored.root)
        assert restored.root.to_regex() == p1.root.to_regex()
        assert restored.trace == p1.trace


def test_gtree_roundtrip_restores_star_ids_verbatim():
    # Ids come from disjoint per-seed blocks, so deserialization keeps
    # them verbatim and needs no global reservation: a block allocator
    # for a different seed can never collide with restored ids.
    from repro.core.gtree import seed_block_allocator

    tree = sample_tree()
    restored = gtree_from_dict(json_roundtrip(gtree_to_dict(tree)))
    assert [s.star_id for s in stars_of(restored)] == [
        s.star_id for s in stars_of(tree)
    ]
    allocator = seed_block_allocator(3)
    fresh = GStar(
        GConst("z", Context("", "")), "z", Context("", ""),
        allocator=allocator,
    )
    assert fresh.star_id == 3 << 20
    assert fresh.star_id not in {s.star_id for s in stars_of(restored)}


def test_gtree_empty_root_roundtrip():
    restored = gtree_from_dict(json_roundtrip(gtree_to_dict(GRoot())))
    assert isinstance(restored, GRoot)
    assert restored.children == []
    assert restored.to_regex() == rx.EPSILON


# --------------------------------------------------------------------------
# Grammars


def grammar_cases():
    g1 = Grammar(
        Nonterminal("S"),
        [
            Production(Nonterminal("S"), ()),
            Production(
                Nonterminal("S"),
                (Nonterminal("S"), "lit", CharSet(frozenset("abc"))),
            ),
        ],
    )
    config = GladeConfig(alphabet="ab<>/")
    learned = learn_grammar(
        ["<a>ab</a>", "zz"],
        lambda s: xml_like_oracle(s),
        config,
    ).grammar
    return [g1, learned]


@pytest.mark.parametrize("index", [0, 1])
def test_grammar_roundtrip(index):
    grammar = grammar_cases()[index]
    restored = grammar_from_dict(json_roundtrip(grammar_to_dict(grammar)))
    assert restored.start == grammar.start
    assert restored.productions == grammar.productions
    # Identical production order means the rendering is byte-identical.
    assert str(restored) == str(grammar)


def test_grammar_malformed_rejected():
    with pytest.raises(ArtifactError, match="malformed grammar"):
        grammar_from_dict({"start": "S"})
    with pytest.raises(ArtifactError, match="unknown symbol tag"):
        grammar_from_dict(
            {
                "start": "S",
                "productions": [{"head": "S", "body": [{"t": "wat"}]}],
            }
        )


# --------------------------------------------------------------------------
# Phase-2 results


def test_phase2_result_roundtrip():
    config = GladeConfig(alphabet="ab<>/", record_trace=True)
    result = learn_grammar(["<a>ab</a>"], xml_like_oracle, config)
    assert result.phase2_result is not None
    data = json_roundtrip(phase2_result_to_dict(result.phase2_result))
    restored = phase2_result_from_dict(data)
    assert restored.representative == result.phase2_result.representative
    assert restored.records == result.phase2_result.records
    assert str(restored.grammar) == str(result.phase2_result.grammar)
