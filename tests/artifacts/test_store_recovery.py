"""Checkpoint hardening: content digests and generation fallback.

Acceptance criteria for the durable-store layer: a truncated or
bit-flipped checkpoint is *detected* on load (never deserialized into a
half-wrong artifact), the store falls back to the last-good generation,
and resuming from that generation re-issues zero oracle queries for
stages it already records.
"""

import json

import pytest

from repro.artifacts import RunArtifact
from repro.artifacts.run import (
    artifact_digest,
    load_artifact,
    save_artifact,
)
from repro.artifacts.schema import ArtifactCorrupt, ArtifactError
from repro.artifacts.store import FileCheckpointStore
from repro.core.glade import GladeConfig
from repro.core.pipeline import LearningPipeline

from tests.core.helpers import XML_ALPHABET, xml_like_oracle

SEEDS = ["<a>ab</a>", "xy"]


class CountingBase:
    """Counts raw oracle invocations (below any cache)."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0

    def __call__(self, text):
        self.calls += 1
        return self.fn(text)


def learn_to(path, oracle=xml_like_oracle):
    store = FileCheckpointStore(path)
    config = GladeConfig(alphabet=XML_ALPHABET)
    artifact = LearningPipeline(
        oracle, config=config, store=store
    ).run(SEEDS)
    return artifact, store


class TestArtifactDigest:
    def test_save_embeds_digest_and_load_verifies(self, tmp_path):
        path = tmp_path / "run.json"
        artifact, _store = learn_to(path)
        data = json.loads(path.read_text())
        assert data["integrity"] == artifact_digest(data)
        loaded = load_artifact(path)
        assert str(loaded.grammar) == str(artifact.grammar)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "run.json"
        learn_to(path)
        text = path.read_text()
        # Truncate *inside* the JSON so the damage is a parse error.
        path.write_text(text[: len(text) // 2])
        with pytest.raises(ArtifactError):
            load_artifact(path)

    def test_bitflip_detected(self, tmp_path):
        # A corruption that keeps the JSON well-formed is exactly what
        # the digest exists for.
        path = tmp_path / "run.json"
        learn_to(path)
        data = json.loads(path.read_text())
        data["oracle_queries"] += 1
        path.write_text(json.dumps(data))
        with pytest.raises(ArtifactCorrupt):
            load_artifact(path)

    def test_pre_digest_artifact_still_loads(self, tmp_path):
        # Artifacts written before the integrity field existed carry no
        # digest; they load unverified rather than being rejected.
        path = tmp_path / "run.json"
        artifact, _store = learn_to(path)
        data = json.loads(path.read_text())
        del data["integrity"]
        path.write_text(json.dumps(data))
        loaded = load_artifact(path)
        assert str(loaded.grammar) == str(artifact.grammar)


class TestGenerationFallback:
    def test_saves_rotate_previous_generation(self, tmp_path):
        path = tmp_path / "run.json"
        _artifact, store = learn_to(path)
        assert (tmp_path / "run.json.prev").exists()
        # The previous generation is the checkpoint just before the
        # final save: an earlier, still-verifiable snapshot.
        previous = load_artifact(store.previous_path)
        assert isinstance(previous, RunArtifact)
        assert previous.status != "complete"

    def test_corrupt_current_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "run.json"
        learn_to(path)
        path.write_text(path.read_text()[:40])
        store = FileCheckpointStore(path)
        recovered = store.load()
        assert recovered is not None
        assert store.recovered_from == store.previous_path

    def test_missing_current_serves_previous(self, tmp_path):
        path = tmp_path / "run.json"
        learn_to(path)
        path.unlink()
        store = FileCheckpointStore(path)
        assert store.load() is not None
        assert store.recovered_from == store.previous_path

    def test_both_generations_bad_raises_current_error(self, tmp_path):
        path = tmp_path / "run.json"
        learn_to(path)
        data = json.loads(path.read_text())
        data["oracle_queries"] += 1
        path.write_text(json.dumps(data))
        (tmp_path / "run.json.prev").write_text("{not json")
        store = FileCheckpointStore(path)
        with pytest.raises(ArtifactCorrupt):
            store.load()

    def test_load_without_any_generation_returns_none(self, tmp_path):
        store = FileCheckpointStore(tmp_path / "missing.json")
        assert store.load() is None

    def test_keep_previous_false_raises_on_corruption(self, tmp_path):
        path = tmp_path / "run.json"
        store = FileCheckpointStore(path, keep_previous=False)
        config = GladeConfig(alphabet=XML_ALPHABET)
        LearningPipeline(
            xml_like_oracle, config=config, store=store
        ).run(SEEDS)
        assert not (tmp_path / "run.json.prev").exists()
        path.write_text(path.read_text()[:40])
        with pytest.raises(ArtifactError):
            FileCheckpointStore(path, keep_previous=False).load()


class TestResumeAfterCorruption:
    def test_resume_from_last_good_reissues_zero_queries(self, tmp_path):
        path = tmp_path / "run.json"
        reference, _store = learn_to(path)
        # Corrupt the final checkpoint; the last-good generation is the
        # pre-finalize save, whose recorded stages are all intact.
        path.write_text(path.read_text()[: 40])
        store = FileCheckpointStore(path)
        recovered = store.load()
        assert store.recovered_from is not None
        assert recovered.status != "complete"

        oracle = CountingBase(xml_like_oracle)
        config = GladeConfig(alphabet=XML_ALPHABET)
        resumed = LearningPipeline(
            oracle, config=config, store=store
        ).resume(recovered)
        assert resumed.status == "complete"
        # Every oracle-bearing stage was checkpointed before the lost
        # save: the resume replays no queries at all.
        assert oracle.calls == 0
        assert str(resumed.grammar) == str(reference.grammar)
        assert resumed.oracle_queries == reference.oracle_queries
