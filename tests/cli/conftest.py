"""CLI-test fixtures.

CLI tests mostly exercise subprocesses, but a few construct artifacts
in-process; restore the global star-id counter around each test so the
counter-sensitive quality-floor tests later in the suite see an
unchanged trajectory (see tests/artifacts/conftest.py).
"""

import pytest

from repro.core import gtree


@pytest.fixture(autouse=True)
def preserve_star_counter():
    saved = gtree._star_counter.next_id
    yield
    gtree._star_counter.next_id = saved
