"""CLI tracing flow: ``learn --trace`` → ``trace`` → ``show --stats``.

Exercises the user-facing surface of the observability layer over a
real subprocess oracle: the traced artifact carries a telemetry
section, ``repro trace`` converts it to valid Chrome trace_event JSON,
``repro show --stats`` renders the counters, and an untraced artifact
degrades with a clear error instead of an empty file.
"""

import json
import os
import subprocess
import sys

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

ORACLE = '''\
import sys

text = sys.stdin.read()
sys.exit(0 if text and set(text) <= {"a"} else 1)
'''


def run_cli(tmp_path, *args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro"] + list(args),
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
    )


def learn(tmp_path, out_name, *extra):
    oracle = tmp_path / "oracle.py"
    oracle.write_text(ORACLE)
    return run_cli(
        tmp_path,
        "learn",
        "--command", "{} {}".format(sys.executable, oracle),
        "--out", out_name,
        "--alphabet", "ab",
        "--samples", "0",
        "--seed", "aa",
        *extra,
    )


def test_traced_learn_exports_chrome_trace_and_stats(tmp_path):
    completed = learn(tmp_path, "run.json", "--trace")
    assert completed.returncode == 0, completed.stderr

    traced = run_cli(
        tmp_path, "trace", "run.json", "--out", "run.trace.json"
    )
    assert traced.returncode == 0, traced.stderr
    assert "Perfetto" in traced.stdout or "perfetto" in traced.stdout
    data = json.loads((tmp_path / "run.trace.json").read_text())
    assert data["traceEvents"]
    assert all("pid" in event and "ph" in event
               for event in data["traceEvents"])

    stats = run_cli(tmp_path, "show", "run.json", "--stats")
    assert stats.returncode == 0, stats.stderr
    assert "oracle.calls" in stats.stdout
    assert "spans by shard" in stats.stdout


def test_untraced_artifact_refuses_trace_export(tmp_path):
    completed = learn(tmp_path, "plain.json")
    assert completed.returncode == 0, completed.stderr

    refused = run_cli(tmp_path, "trace", "plain.json")
    assert refused.returncode == 2
    assert "error:" in refused.stderr
    assert "--trace" in refused.stderr
    assert not (tmp_path / "run.trace.json").exists()

    stats = run_cli(tmp_path, "show", "plain.json", "--stats")
    assert stats.returncode == 0, stats.stderr
    assert "not recorded" in stats.stdout
