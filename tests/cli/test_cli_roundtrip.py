"""End-to-end CLI round trip: ``learn --out`` → kill → ``resume`` → ``sample``.

The oracle is a real subprocess (a tiny Python recognizer for the
language ``x+ | y+ | z+``) that logs every invocation. The learn run is
SIGKILLed mid-phase-1 — after at least one seed's checkpoint is written
but before the run completes — then resumed. Acceptance criteria:

- the resumed artifact's grammar is byte-identical (as serialized JSON
  and as rendered text) to an uninterrupted run's;
- accumulated ``oracle_queries`` equals the uninterrupted run's total;
- the resumed process re-issues no oracle queries for seeds that were
  already checkpointed (its invocation count is bounded by the
  uninterrupted run's post-checkpoint work);
- ``sample`` draws identical samples from both artifacts under the
  same ``--rng-seed``.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

ORACLE = '''\
import os
import sys
import time

text = sys.stdin.read()
with open(os.environ["ORACLE_LOG"], "a") as log:
    log.write(repr(text) + "\\n")
time.sleep(0.02)  # widen the kill window for the interruption test
ok = bool(text) and (set(text) <= {"x"} or set(text) <= {"y"} or set(text) <= {"z"})
sys.exit(0 if ok else 1)
'''

SEEDS = ["xx", "yy", "zz"]


def cli_env(tmp_path, log_name):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["ORACLE_LOG"] = str(tmp_path / log_name)
    return env


def cli_command(*args):
    return [sys.executable, "-m", "repro"] + list(args)


def learn_args(oracle_path, out_path):
    args = [
        "learn",
        "--command", "{} {}".format(sys.executable, oracle_path),
        "--out", str(out_path),
        "--alphabet", "xyz",
        "--samples", "0",
    ]
    for seed in SEEDS:
        args += ["--seed", seed]
    return args


def log_lines(tmp_path, log_name):
    path = tmp_path / log_name
    if not path.exists():
        return []
    return path.read_text().splitlines()


@pytest.fixture
def oracle_path(tmp_path):
    path = tmp_path / "oracle.py"
    path.write_text(ORACLE)
    return path


def run_cli(args, env, **kwargs):
    return subprocess.run(
        cli_command(*args),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
        **kwargs,
    )


def test_learn_kill_resume_sample_roundtrip(tmp_path, oracle_path):
    # 1. Uninterrupted reference run.
    env = cli_env(tmp_path, "full.log")
    full_out = tmp_path / "full.json"
    completed = run_cli(learn_args(oracle_path, full_out), env)
    assert completed.returncode == 0, completed.stderr
    full = json.loads(full_out.read_text())
    assert full["status"] == "complete"
    full_invocations = len(log_lines(tmp_path, "full.log"))
    assert full_invocations > 0

    # 2. Interrupted run: SIGKILL once the first seed's checkpoint lands.
    env = cli_env(tmp_path, "killed.log")
    killed_out = tmp_path / "killed.json"
    proc = subprocess.Popen(
        cli_command(*learn_args(oracle_path, killed_out)),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 90
        killed_mid_run = False
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if killed_out.exists():
                try:
                    snapshot = json.loads(killed_out.read_text())
                except json.JSONDecodeError:
                    snapshot = None  # mid-replace; retry
                if (
                    snapshot
                    and snapshot["status"] == "in_progress"
                    and len(snapshot["phase1_results"]) >= 1
                ):
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=30)
                    killed_mid_run = True
                    break
            time.sleep(0.005)
        assert killed_mid_run, "learn finished before it could be killed"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    checkpoint = json.loads(killed_out.read_text())
    assert checkpoint["status"] == "in_progress"
    done_states = {"used", "skipped"}
    finished = [s for s in checkpoint["seeds"] if s["state"] in done_states]
    unfinished = [
        s for s in checkpoint["seeds"] if s["state"] not in done_states
    ]
    assert finished and unfinished  # genuinely mid-run
    base_queries = checkpoint["oracle_queries"]

    # 3. Resume from the checkpoint.
    resume_log_before = len(log_lines(tmp_path, "killed.log"))
    resumed = run_cli(["resume", str(killed_out)], env)
    assert resumed.returncode == 0, resumed.stderr
    final = json.loads(killed_out.read_text())
    assert final["status"] == "complete"

    # Byte-identical grammar, both serialized and rendered.
    assert json.dumps(final["grammar"], sort_keys=True) == json.dumps(
        full["grammar"], sort_keys=True
    )
    # Identical accumulated query statistics (the paper's cost metric).
    assert final["oracle_queries"] == full["oracle_queries"]
    # Finished seeds kept their checkpointed per-seed query counts, and
    # the resumed process stayed within the post-checkpoint budget: zero
    # queries were re-issued for already-checkpointed seeds.
    full_by_text = {s["text"]: s for s in full["seeds"]}
    for seed in finished:
        assert seed["queries"] == full_by_text[seed["text"]]["queries"]
    resume_invocations = len(log_lines(tmp_path, "killed.log")) - resume_log_before
    assert resume_invocations <= full["oracle_queries"] - base_queries

    # 4. Sampling from both artifacts is identical under one rng seed.
    samples_full = run_cli(
        ["sample", str(full_out), "-n", "8", "--rng-seed", "7"], env
    )
    samples_resumed = run_cli(
        ["sample", str(killed_out), "-n", "8", "--rng-seed", "7"], env
    )
    assert samples_full.returncode == 0
    assert samples_full.stdout == samples_resumed.stdout
    assert len(samples_full.stdout.splitlines()) == 8

    # Different rng seeds draw from the same grammar deterministically.
    again = run_cli(
        ["sample", str(full_out), "-n", "8", "--rng-seed", "7"], env
    )
    assert again.stdout == samples_full.stdout

    # 5. `show` summarizes the resumed artifact.
    shown = run_cli(["show", str(killed_out)], env)
    assert shown.returncode == 0
    assert "status: complete" in shown.stdout
    assert "phase-one regex" in shown.stdout


def test_parallel_learn_kill_resume_matches_serial(tmp_path, oracle_path):
    """``learn --jobs 4`` SIGKILLed mid-run, then ``resume --jobs 4``,
    ends byte-identical to an uninterrupted ``--jobs 1`` run — the
    determinism guarantee of the execution subsystem, end to end."""
    # Reference: uninterrupted serial (--jobs 1) run.
    env = cli_env(tmp_path, "ref.log")
    ref_out = tmp_path / "ref.json"
    completed = run_cli(learn_args(oracle_path, ref_out), env)
    assert completed.returncode == 0, completed.stderr
    ref = json.loads(ref_out.read_text())
    assert ref["execution"]["backend"] == "serial"
    assert ref["execution"]["jobs"] == 1

    # Interrupted parallel run (thread backend keeps it light on CI).
    env = cli_env(tmp_path, "par.log")
    par_out = tmp_path / "par.json"
    parallel = ["--jobs", "4", "--backend", "thread"]
    proc = subprocess.Popen(
        cli_command(*(learn_args(oracle_path, par_out) + parallel)),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 90
        killed_mid_run = False
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if par_out.exists():
                try:
                    snapshot = json.loads(par_out.read_text())
                except json.JSONDecodeError:
                    snapshot = None  # mid-replace; retry
                if (
                    snapshot
                    and snapshot["status"] == "in_progress"
                    and len(snapshot["phase1_results"]) >= 1
                ):
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=30)
                    killed_mid_run = True
                    break
            time.sleep(0.005)
        assert killed_mid_run, "learn finished before it could be killed"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    resumed = run_cli(
        ["resume", str(par_out), "--jobs", "4", "--backend", "thread"], env
    )
    assert resumed.returncode == 0, resumed.stderr
    final = json.loads(par_out.read_text())
    assert final["status"] == "complete"

    # Byte-identical grammar and equal counted metrics vs --jobs 1.
    assert json.dumps(final["grammar"], sort_keys=True) == json.dumps(
        ref["grammar"], sort_keys=True
    )
    assert final["oracle_queries"] == ref["oracle_queries"]
    assert [s["state"] for s in final["seeds"]] == [
        s["state"] for s in ref["seeds"]
    ]
    assert [s["queries"] for s in final["seeds"]] == [
        s["queries"] for s in ref["seeds"]
    ]
    # The artifact records how phase 1 actually executed (plus
    # matcher-tier telemetry, which may differ across backends).
    assert final["execution"]["backend"] == "thread"
    assert final["execution"]["jobs"] == 4
    assert "matcher_tiers" in final["execution"]

    # Samples drawn from both artifacts are identical.
    a = run_cli(["sample", str(ref_out), "-n", "6", "--rng-seed", "3"], env)
    b = run_cli(["sample", str(par_out), "-n", "6", "--rng-seed", "3"], env)
    assert a.returncode == 0 and b.returncode == 0
    assert a.stdout == b.stdout


def test_learn_reports_seed_provenance_on_rejection(tmp_path, oracle_path):
    env = cli_env(tmp_path, "reject.log")
    seed_file = tmp_path / "seeds.txt"
    seed_file.write_text("xx\nnope!\n")
    proc = subprocess.run(
        cli_command(
            "learn",
            "--command", "{} {}".format(sys.executable, oracle_path),
            "--seed-file", str(seed_file),
            "--samples", "0",
        ),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 2
    combined = proc.stdout + proc.stderr
    assert "rejected by the oracle" in combined
    assert "seeds.txt:2" in combined
    # A rejected seed is a user error, not a crash.
    assert "Traceback" not in combined


def test_learn_refuses_to_clobber_in_progress_artifact(
    tmp_path, oracle_path
):
    from repro.artifacts import RunArtifact, SeedRecord, save_artifact

    env = cli_env(tmp_path, "clobber.log")
    out = tmp_path / "run.json"
    save_artifact(RunArtifact(seeds=[SeedRecord(text="xx")]), out)

    args = [
        "learn",
        "--command", "{} {}".format(sys.executable, oracle_path),
        "--seed", "xx",
        "--alphabet", "xyz",
        "--samples", "0",
        "--out", str(out),
    ]
    refused = run_cli(args, env)
    assert refused.returncode != 0
    assert "resume" in refused.stderr
    # The checkpoint survived the refused run.
    assert json.loads(out.read_text())["status"] == "in_progress"

    forced = run_cli(args + ["--force"], env)
    assert forced.returncode == 0, forced.stderr
    assert json.loads(out.read_text())["status"] == "complete"


def test_malformed_artifact_is_reported_cleanly(tmp_path):
    from repro.artifacts import SCHEMA_VERSION

    path = tmp_path / "mangled.json"
    path.write_text(
        json.dumps({"kind": "glade-run", "schema_version": SCHEMA_VERSION})
    )
    env = cli_env(tmp_path, "unused.log")
    proc = run_cli(["show", str(path)], env)
    assert proc.returncode == 2
    assert "malformed run artifact" in proc.stderr
    assert "Traceback" not in proc.stderr


def test_resume_rejects_artifact_without_oracle(tmp_path):
    # An in-process artifact (no oracle spec) cannot be resumed by the CLI.
    from repro.artifacts import RunArtifact, SeedRecord, save_artifact

    artifact = RunArtifact(seeds=[SeedRecord(text="xx")])
    path = tmp_path / "noracle.json"
    save_artifact(artifact, path)
    env = cli_env(tmp_path, "unused.log")
    proc = run_cli(["resume", str(path)], env)
    assert proc.returncode != 0
    assert "no oracle command" in (proc.stdout + proc.stderr)


def test_sample_requires_grammar(tmp_path):
    from repro.artifacts import RunArtifact, SeedRecord, save_artifact

    artifact = RunArtifact(seeds=[SeedRecord(text="xx")])
    path = tmp_path / "nogrammar.json"
    save_artifact(artifact, path)
    env = cli_env(tmp_path, "unused.log")
    proc = run_cli(["sample", str(path)], env)
    assert proc.returncode != 0
    assert "no grammar" in (proc.stdout + proc.stderr)


def test_version_mismatch_is_reported(tmp_path):
    path = tmp_path / "future.json"
    path.write_text(json.dumps({"kind": "glade-run", "schema_version": 999}))
    env = cli_env(tmp_path, "unused.log")
    proc = run_cli(["show", str(path)], env)
    assert proc.returncode == 2
    assert "schema version" in proc.stderr


PHASE2_ORACLE = '''\
import os
import sys
import time

text = sys.stdin.read()
with open(os.environ["ORACLE_LOG"], "a") as log:
    log.write(repr(text) + "\\n")
time.sleep(0.02)  # widen the kill window for the interruption test
ok = bool(text) and any(set(text) <= {c} for c in "wxyz")
sys.exit(0 if ok else 1)
'''

PHASE2_SEEDS = ["xx", "yy", "zz", "ww"]


def phase2_learn_args(oracle_path, out_path, extra=()):
    args = [
        "learn",
        "--command", "{} {}".format(sys.executable, oracle_path),
        "--out", str(out_path),
        "--alphabet", "wxyz",
        "--samples", "0",
    ]
    for seed in PHASE2_SEEDS:
        args += ["--seed", seed]
    return args + list(extra)


def test_phase2_kill_resume_matches_serial(tmp_path):
    """``learn --jobs 4`` SIGKILLed *mid-phase-2*, then ``resume --jobs
    2`` (a different job count), ends byte-identical to an
    uninterrupted serial run with equal accumulated counted query
    stats — the wavefront checkpointing guarantee, end to end.

    Four single-letter seeds give four repetition stars and six merge
    candidates; the oracle's per-query sleep stretches phase 2 wide
    enough to kill between two pair commits.
    """
    oracle_path = tmp_path / "oracle2.py"
    oracle_path.write_text(PHASE2_ORACLE)

    # Reference: uninterrupted serial (--jobs 1) run.
    env = cli_env(tmp_path, "p2ref.log")
    ref_out = tmp_path / "p2ref.json"
    completed = run_cli(phase2_learn_args(oracle_path, ref_out), env)
    assert completed.returncode == 0, completed.stderr
    ref = json.loads(ref_out.read_text())
    assert ref["status"] == "complete"
    ref_decisions = ref["phase2_progress"]["decisions"]
    # At least the C(4,2) cross-seed candidates (phase 1 may introduce
    # more than one star per seed).
    assert len(ref_decisions) >= 6

    # Interrupted parallel run: SIGKILL once at least one pair has
    # committed but before the whole plan has.
    env = cli_env(tmp_path, "p2kill.log")
    kill_out = tmp_path / "p2kill.json"
    proc = subprocess.Popen(
        cli_command(*phase2_learn_args(
            oracle_path, kill_out, ["--jobs", "4", "--backend", "thread"]
        )),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 90
        killed_mid_phase2 = False
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break
            if kill_out.exists():
                try:
                    snapshot = json.loads(kill_out.read_text())
                except json.JSONDecodeError:
                    snapshot = None  # mid-replace; retry
                if snapshot and snapshot["status"] == "in_progress":
                    decisions = snapshot.get("phase2_progress", {}).get(
                        "decisions", []
                    )
                    pairs = snapshot.get("phase2_progress", {}).get(
                        "pairs", 0
                    )
                    if 0 < len(decisions) < pairs:
                        proc.send_signal(signal.SIGKILL)
                        proc.wait(timeout=30)
                        killed_mid_phase2 = True
                        break
            time.sleep(0.002)
        assert killed_mid_phase2, "learn finished before a mid-phase-2 kill"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    checkpoint = json.loads(kill_out.read_text())
    assert checkpoint["status"] == "in_progress"
    committed = checkpoint["phase2_progress"]["decisions"]
    assert 0 < len(committed) < checkpoint["phase2_progress"]["pairs"]
    # The committed prefix agrees with the serial run's decisions.
    assert committed == ref_decisions[: len(committed)]

    # Resume at a *different* job count.
    resumed = run_cli(
        ["resume", str(kill_out), "--jobs", "2", "--backend", "thread"],
        env,
    )
    assert resumed.returncode == 0, resumed.stderr
    final = json.loads(kill_out.read_text())
    assert final["status"] == "complete"

    # Byte-identical grammar, equal accumulated counted query stats,
    # identical committed decision log.
    assert json.dumps(final["grammar"], sort_keys=True) == json.dumps(
        ref["grammar"], sort_keys=True
    )
    assert final["oracle_queries"] == ref["oracle_queries"]
    assert final["phase2_progress"]["decisions"] == ref_decisions
    assert final["phase2_progress"]["backend"] == "thread"
    assert final["phase2_progress"]["jobs"] == 2

    # Samples drawn from both artifacts are identical.
    a = run_cli(["sample", str(ref_out), "-n", "6", "--rng-seed", "3"], env)
    b = run_cli(["sample", str(kill_out), "-n", "6", "--rng-seed", "3"], env)
    assert a.returncode == 0 and b.returncode == 0
    assert a.stdout == b.stdout

    # `show` reports the phase-2 execution record.
    shown = run_cli(["show", str(kill_out)], env)
    assert shown.returncode == 0
    assert "phase-2 execution" in shown.stdout
