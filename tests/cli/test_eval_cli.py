"""End-to-end `repro eval`: suite artifact, cache reuse, and the
baseline regression gate (the CI eval-gate contract)."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def suite_env(tmp_path):
    return {
        "cache": str(tmp_path / "cache"),
        "out": str(tmp_path / "BENCH_suite.json"),
        "baseline": str(tmp_path / "baseline.json"),
    }


def run_eval(*extra, env):
    argv = [
        "eval",
        "--subjects", "sed",
        "--cache-dir", env["cache"],
        "--out", env["out"],
    ]
    return main(argv + list(extra))


def test_eval_writes_suite_and_gates_on_baseline(suite_env, capsys):
    # First run: learn, write the suite artifact.
    assert run_eval(env=suite_env) == 0
    data = json.loads(open(suite_env["out"]).read())
    assert data["kind"] == "glade-eval-suite"
    assert "sed" in data["metrics"]
    assert data["metrics"]["sed"]["oracle_queries"] > 0

    # Adopt it as the baseline; a re-run over the same cache must
    # compare stable and exit 0 under --check.
    open(suite_env["baseline"], "w").write(json.dumps(data))
    assert run_eval(
        "--baseline", suite_env["baseline"], "--check", env=suite_env
    ) == 0
    out = capsys.readouterr().out
    assert "stable" in out

    # Seed a deterministic-metric regression into the baseline (the
    # current run now counts more queries than the baseline claims):
    # --check must fail the build.
    data["metrics"]["sed"]["oracle_queries"] -= 1
    data["metrics"]["sed"]["grammar_digest"] = "0" * 64
    open(suite_env["baseline"], "w").write(json.dumps(data))
    assert run_eval(
        "--baseline", suite_env["baseline"], "--check", env=suite_env
    ) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out

    # Without --check the same drift is reported but not fatal.
    assert run_eval(
        "--baseline", suite_env["baseline"], env=suite_env
    ) == 0


def test_eval_cache_reuse_skips_learning(suite_env, capsys):
    assert run_eval(env=suite_env) == 0
    first = json.loads(open(suite_env["out"]).read())
    assert first["execution"]["cache_misses"] == 1
    # Second invocation over the same cache directory: zero learning.
    assert run_eval(env=suite_env) == 0
    second = json.loads(open(suite_env["out"]).read())
    assert second["execution"]["cache_misses"] == 0
    assert second["execution"]["cache_hits"] == 1
    assert second["metrics"] == first["metrics"]


def test_eval_rejects_unknown_subject(suite_env, capsys):
    with pytest.raises(SystemExit):
        main(["eval", "--subjects", "nope"])


def test_eval_check_requires_baseline(suite_env):
    with pytest.raises(SystemExit):
        main(["eval", "--subjects", "sed", "--check", "--out", ""])
