"""CLI fault-tolerance surface: --inject-faults, corrupt-resume, show."""

import json
import re
import sys

import pytest

from repro.cli import main as cli_main

# Accepts strings of a's — the usual tiny real-subprocess validator.
_VALIDATOR = (
    "import sys; text = sys.stdin.read(); "
    "sys.exit(0 if text and set(text) <= {'a'} else 1)"
)


def _command():
    return "{} -c \"{}\"".format(sys.executable, _VALIDATOR)


def _learn(capsys, *extra):
    code = cli_main(
        [
            "learn",
            "--command", _command(),
            "--seed", "aa",
            "--alphabet", "ab",
            "--samples", "0",
            "--retry-delay", "0",
        ]
        + list(extra)
    )
    out = capsys.readouterr().out
    assert code == 0
    return out


def _query_counts(out):
    match = re.search(r"# (\d+) oracle queries \((\d+) unique\)", out)
    assert match, out
    return int(match.group(1)), int(match.group(2))


def _grammar_lines(out):
    return [
        line for line in out.splitlines()
        if not line.startswith("#")
    ]


class TestInjectFaults:
    def test_injected_faults_leave_results_identical(self, capsys):
        healthy = _learn(capsys)
        faulty = _learn(capsys, "--inject-faults", "transient@2,5;timeout@9",
                        "--timeout-verdict", "retry")
        assert _grammar_lines(faulty) == _grammar_lines(healthy)
        assert _query_counts(faulty) == _query_counts(healthy)

    def test_bad_spec_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "learn",
                    "--command", _command(),
                    "--seed", "aa",
                    "--inject-faults", "bogus@1",
                ]
            )

    def test_negative_retries_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "learn",
                    "--command", _command(),
                    "--seed", "aa",
                    "--retries", "-1",
                ]
            )

    def test_show_reports_fault_counters(self, capsys, tmp_path):
        out_path = tmp_path / "run.json"
        _learn(
            capsys,
            "--inject-faults", "transient@2",
            "--out", str(out_path),
        )
        code = cli_main(["show", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault tolerance:" in out
        assert "injected.transient" in out

    def test_fault_spec_recorded_in_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "run.json"
        _learn(
            capsys,
            "--inject-faults", "transient@2",
            "--out", str(out_path),
        )
        data = json.loads(out_path.read_text())
        assert data["oracle"]["inject_faults"] == "transient@2"
        assert data["oracle"]["retries"] == 2


class TestResumeCorruptCheckpoint:
    def test_resume_recovers_with_warning(self, capsys, tmp_path):
        out_path = tmp_path / "run.json"
        healthy = _learn(capsys, "--out", str(out_path))
        # Truncate the final checkpoint: the store must fall back to
        # the rotated last-good generation and say so.
        out_path.write_text(out_path.read_text()[:40])
        code = cli_main(["resume", str(out_path), "--samples", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "failed its integrity check" in out
        assert "last-good checkpoint" in out
        assert _grammar_lines(out) == _grammar_lines(healthy)

    def test_resume_missing_artifact_is_clean_error(self, capsys, tmp_path):
        code = cli_main(["resume", str(tmp_path / "nope.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "no checkpoint found" in err
