"""Property-based tests (hypothesis) for the language substrate.

Core invariants:

- random regex ASTs agree with Python's ``re`` on random probes;
- strings sampled from a regex are matched by it;
- strings sampled from a grammar are recognized by Earley;
- determinization preserves the language.
"""

import random
import re

from hypothesis import given, settings, strategies as st

from repro.automata.determinize import regex_to_dfa
from repro.languages import regex as rx
from repro.languages.cfg import Grammar, Nonterminal, Production
from repro.languages.earley import recognize
from repro.languages.sampler import GrammarSampler, sample_regex
from repro.languages.to_grammar import regex_to_grammar

_ALPHABET = "ab"


def regex_trees(max_leaves: int = 5):
    """Strategy producing small regex ASTs over {a, b}."""
    leaves = st.one_of(
        st.text(alphabet=_ALPHABET, min_size=1, max_size=3).map(rx.Lit),
        st.just(rx.EPSILON),
        st.sampled_from(
            [rx.CharClass(frozenset("a")), rx.CharClass(frozenset("ab"))]
        ),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(children, children).map(
                lambda pair: rx.concat(*pair)
            ),
            st.tuples(children, children).map(lambda pair: rx.alt(*pair)),
            children.map(rx.star),
        ),
        max_leaves=max_leaves,
    )


probes = st.text(alphabet=_ALPHABET, max_size=8)


@given(expr=regex_trees(), probe=probes)
@settings(max_examples=150, deadline=None)
def test_nfa_agrees_with_python_re(expr, probe):
    compiled = re.compile(rx.to_python_re(expr))
    assert bool(compiled.fullmatch(probe)) == expr.matches(probe)


@given(expr=regex_trees(), seed=st.integers(0, 10_000))
@settings(max_examples=150, deadline=None)
def test_regex_samples_match(expr, seed):
    text = sample_regex(expr, random.Random(seed))
    assert expr.matches(text)


@given(expr=regex_trees(), probe=probes)
@settings(max_examples=100, deadline=None)
def test_determinization_preserves_language(expr, probe):
    dfa = regex_to_dfa(expr, _ALPHABET)
    assert dfa.accepts(probe) == expr.matches(probe)


@given(expr=regex_trees(), probe=probes)
@settings(max_examples=100, deadline=None)
def test_regex_to_grammar_preserves_language(expr, probe):
    grammar = regex_to_grammar(expr)
    assert recognize(grammar, probe) == expr.matches(probe)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=50, deadline=None)
def test_grammar_samples_recognized(seed):
    s = Nonterminal("S")
    grammar = Grammar(
        s,
        [
            Production(s, ()),
            Production(s, ("a", s, "b")),
            Production(s, (s, s)),
        ],
    )
    sampler = GrammarSampler(
        grammar, random.Random(seed), max_depth=10, max_nodes=100
    )
    assert recognize(grammar, sampler.sample())
