"""Tests for the tiered matching engine (`TieredMatcher` + promotion).

The dense tier is an execution detail: every test here pins some part
of that contract — verdict agreement across tiers on random ASTs,
structural (version-keyed) invalidation across splices, batched
coverage tracking equivalent to the serial §6.1 loop, and end-to-end
learning runs whose grammars and query accounting are byte-identical
with the dense tier on and off, serial and parallel.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.artifacts import grammar_to_dict
from repro.automata.dense import DenseDFA
from repro.core.glade import GladeConfig
from repro.core.pipeline import LearningPipeline
from repro.languages import regex as rx
from repro.languages.engine import (
    _FAILED,
    Engine,
    MembershipSession,
    TieredMatcher,
)
from repro.languages.nfa_match import compile_regex
from repro.targets import get_target

_ALPHABET = "ab"


def regex_trees(max_leaves: int = 5):
    leaves = st.one_of(
        st.text(alphabet=_ALPHABET, min_size=1, max_size=3).map(rx.Lit),
        st.just(rx.EPSILON),
        st.sampled_from(
            [rx.CharClass(frozenset("a")), rx.CharClass(frozenset("ab"))]
        ),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(children, children).map(
                lambda pair: rx.concat(*pair)
            ),
            st.tuples(children, children).map(lambda pair: rx.alt(*pair)),
            children.map(rx.star),
        ),
        max_leaves=max_leaves,
    )


probes = st.text(alphabet=_ALPHABET + "☃", max_size=8)


def hot_engine(**kwargs):
    """An engine that promotes on the very first probe."""
    kwargs.setdefault("promote_threshold", 1)
    return Engine(dense=True, **kwargs)


class TestTieredMatcher:
    @settings(max_examples=100, deadline=None)
    @given(
        expr=regex_trees(),
        texts=st.lists(probes, min_size=1, max_size=6),
    )
    def test_all_tiers_agree(self, expr, texts):
        expected = [compile_regex(expr).matches(text) for text in texts]
        lazy = Engine(dense=False).matcher(expr)
        assert [lazy(text) for text in texts] == expected
        hot = hot_engine().matcher(expr)
        assert [hot(text) for text in texts] == expected
        assert hot_engine().matcher(expr).match_many(texts) == expected

    def test_promotion_after_threshold(self):
        engine = Engine(dense=True, promote_threshold=3)
        match = engine.matcher(rx.star(rx.Lit("ab")))
        assert isinstance(match, TieredMatcher)
        assert match("ab") and match("")  # below threshold: lazy tier
        assert engine.tier_stats.fragments_promoted == 0
        assert match("abab")  # third probe crosses the threshold
        assert engine.tier_stats.fragments_promoted == 1
        assert match("aba") is False
        stats = engine.tier_summary()
        assert stats["nfa_matches"] == 2
        assert stats["dense_matches"] == 2

    def test_batches_count_as_their_size(self):
        engine = Engine(dense=True, promote_threshold=4)
        match = engine.matcher(rx.Lit("a"))
        # A 2-probe batch stays lazy (2 < 4)...
        assert match.match_many(["a", "b"]) == [True, False]
        assert engine.tier_stats.fragments_promoted == 0
        # ...the next one crosses the accumulated threshold.
        assert match.match_many(["a", "aa"]) == [True, False]
        assert engine.tier_stats.fragments_promoted == 1

    def test_non_byte_string_falls_back(self):
        engine = hot_engine()
        match = engine.matcher(rx.star(rx.CharClass(frozenset("a☃"))))
        # The alphabet is not byte-compressible: lowering fails once,
        # every probe stays on the lazy tier.
        assert match("☃") and match("a☃a") and not match("b")
        assert engine.tier_stats.promotion_failures == 1
        # A byte-clean language with a non-byte *probe*: per-string
        # fallback on a promoted matcher.
        snowman = engine.matcher(rx.star(rx.Lit("a")))
        assert snowman("aaa") and not snowman("☃")
        assert engine.tier_stats.fallback_matches == 1

    def test_budget_exhaustion_is_cached(self):
        engine = Engine(dense=True, promote_threshold=1, state_budget=1)
        expr = rx.concat(rx.star(rx.CharClass(frozenset("ab"))), rx.Lit("aba"))
        match = engine.matcher(expr)
        assert match("aba") and not match("ab")
        assert engine.tier_stats.promotion_failures == 1
        assert engine._dense_tables[expr] is _FAILED
        # Re-requesting the version reuses the cached failure.
        again = engine.matcher(expr)
        assert again("aaba")
        assert engine.tier_stats.promotion_failures == 1


class TestVersionInvalidation:
    def test_splice_never_reuses_a_stale_table(self):
        engine = hot_engine()
        before = rx.concat(rx.Lit("a"), rx.star(rx.Lit("b")))
        match_before = engine.matcher(before)
        assert match_before("abb") and not match_before("ab" * 2)
        assert isinstance(engine._dense_tables[before], DenseDFA)
        # Splice: the starred subtree generalizes to a char class. The
        # root is structurally different, so promotion is keyed afresh.
        after = rx.concat(rx.Lit("a"), rx.star(rx.CharClass(frozenset("ab"))))
        match_after = engine.matcher(after)
        assert match_after("abab")  # rejected by the stale language
        assert not match_before("abab")  # old version still answers old
        assert engine._dense_tables[before] is not engine._dense_tables[after]
        assert engine.tier_stats.fragments_promoted == 2

    def test_table_cache_is_bounded(self):
        engine = hot_engine()
        engine.MAX_DENSE_TABLES = 4
        exprs = [rx.Lit("a" * (n + 1)) for n in range(8)]
        for expr in exprs:
            engine.matcher(expr)("a")
        assert len(engine._dense_tables) <= 4
        # Most recent versions survive the FIFO.
        assert exprs[-1] in engine._dense_tables
        assert exprs[0] not in engine._dense_tables


class TestSessionBatching:
    @settings(max_examples=50, deadline=None)
    @given(
        exprs=st.lists(regex_trees(), min_size=1, max_size=3),
        texts=st.lists(probes, min_size=1, max_size=6),
    )
    def test_covers_many_equals_serial_covers(self, exprs, texts):
        batched = MembershipSession(use_dense=True)
        serial = MembershipSession(use_dense=False)
        for expr in exprs:
            batched.remember(expr)
            serial.remember(expr)
        expected = [serial.covers(text) for text in texts]
        assert batched.covers_many(texts) == expected
        # The incremental tracker gives the same verdicts regardless of
        # the order indexes are inspected in.
        tracker = batched.track_coverage(texts)
        order = list(reversed(range(len(texts))))
        assert [tracker.covered(i) for i in order] == [
            expected[i] for i in order
        ]

    def test_tracker_sees_matchers_learned_after_creation(self):
        session = MembershipSession(use_dense=True)
        tracker = session.track_coverage(["ab", "ba"])
        assert tracker.covered(0) is False
        session.remember(rx.Lit("ab"))
        assert tracker.covered(0) is True  # lazily caught up
        assert tracker.covered(1) is False

    @settings(max_examples=50, deadline=None)
    @given(
        expr=regex_trees(),
        texts=st.lists(probes, min_size=1, max_size=8),
    )
    def test_match_many_equals_matcher_loop(self, expr, texts):
        session = MembershipSession(use_dense=True)
        expected = [
            MembershipSession(use_dense=False).matcher(expr)(text)
            for text in texts
        ]
        assert session.match_many(expr, texts) == expected
        # Memo warm now; a second batch answers identically.
        assert session.match_many(expr, texts) == expected


class TestLearningEquivalence:
    def _learn(self, use_dense, jobs):
        xml = get_target("xml")
        seeds = sorted(xml.sample_seeds(2, seed=0), key=len)
        config = GladeConfig(
            alphabet=xml.alphabet,
            jobs=jobs,
            backend="thread" if jobs > 1 else "serial",
            use_dense=use_dense,
        )
        return LearningPipeline(xml.oracle, config=config).run(seeds)

    def test_grammars_identical_across_dense_and_jobs(self):
        reference = self._learn(use_dense=False, jobs=1)
        ref_grammar = json.dumps(
            grammar_to_dict(reference.grammar), sort_keys=True
        )
        for use_dense, jobs in [(True, 1), (False, 2), (True, 2)]:
            actual = self._learn(use_dense=use_dense, jobs=jobs)
            assert (
                json.dumps(grammar_to_dict(actual.grammar), sort_keys=True)
                == ref_grammar
            ), (use_dense, jobs)
            assert actual.oracle_queries == reference.oracle_queries
            assert actual.unique_queries == reference.unique_queries
        # Tier telemetry is recorded but never part of the compared
        # surface — and a dense run actually exercised the tier.
        dense_run = self._learn(use_dense=True, jobs=1)
        assert "matcher_tiers" in dense_run.execution
