"""Tests for the incremental membership engine.

Covers the fragment-cached compilation (`Engine`/`ComposedNFA`), the
session façade (`MembershipSession`), agreement with the from-scratch
Thompson construction on random ASTs, and the fragment-reuse accounting
the ``bench_engine`` microbenchmark relies on.
"""

import random
import re

from hypothesis import given, settings, strategies as st

from repro.languages import regex as rx
from repro.languages.engine import Engine, MembershipSession
from repro.languages.nfa_match import compile_regex
from repro.languages.sampler import sample_regex

_ALPHABET = "ab"


def regex_trees(max_leaves: int = 5):
    """Strategy producing small regex ASTs over {a, b}."""
    leaves = st.one_of(
        st.text(alphabet=_ALPHABET, min_size=1, max_size=3).map(rx.Lit),
        st.just(rx.EPSILON),
        st.sampled_from(
            [rx.CharClass(frozenset("a")), rx.CharClass(frozenset("ab"))]
        ),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.tuples(children, children).map(
                lambda pair: rx.concat(*pair)
            ),
            st.tuples(children, children).map(lambda pair: rx.alt(*pair)),
            children.map(rx.star),
        ),
        max_leaves=max_leaves,
    )


probes = st.text(alphabet=_ALPHABET, max_size=8)


class TestComposedNFA:
    def test_literal(self):
        match = Engine().matcher(rx.Lit("abc"))
        assert match("abc")
        assert not match("ab")
        assert not match("abcd")
        assert not match("")

    def test_epsilon_and_empty(self):
        engine = Engine()
        assert engine.matcher(rx.EPSILON)("")
        assert not engine.matcher(rx.EPSILON)("a")
        assert not engine.matcher(rx.EMPTY)("")
        assert not engine.matcher(rx.EMPTY)("a")

    def test_char_class(self):
        match = Engine().matcher(rx.CharClass(frozenset("pq")))
        assert match("p")
        assert match("q")
        assert not match("r")
        assert not match("pq")

    def test_star_repeats_shared_instance(self):
        match = Engine().matcher(rx.star(rx.Lit("ab")))
        for probe in ["", "ab", "abab", "ababab"]:
            assert match(probe), probe
        for probe in ["a", "aba", "ba"]:
            assert not match(probe), probe

    def test_alt_of_equal_literal_options(self):
        # Raw Alt with structurally equal options: one shared fragment,
        # two call sites, two instances — must not conflate returns.
        expr = rx.Alt([rx.Lit("a"), rx.Lit("a")])
        match = Engine().matcher(expr)
        assert match("a")
        assert not match("aa")

    def test_shared_subtree_across_concat(self):
        # The same (x+y) fragment is called from two sites; instances
        # must not conflate, or "x-" would return through the wrong site.
        inner = rx.alt(rx.Lit("x"), rx.Lit("y"))
        expr = rx.concat(inner, rx.Lit("-"), inner)
        match = Engine().matcher(expr)
        assert match("x-y")
        assert match("y-y")
        assert not match("x-")
        assert not match("-y")
        assert not match("x-yx")

    def test_shared_starred_subtree_across_concat(self):
        inner = rx.star(rx.alt(rx.Lit("x"), rx.Lit("y")))
        expr = rx.concat(inner, rx.Lit("-"), inner)
        match = Engine().matcher(expr)
        assert match("xy-yx")
        assert match("-")
        assert match("xy-")
        assert not match("xyyx")
        assert not match("xy--yx")

    def test_nested_stars(self):
        expr = rx.star(rx.concat(rx.Lit("a"), rx.star(rx.Lit("b"))))
        match = Engine().matcher(expr)
        for probe in ["", "a", "abb", "abab", "abbba"]:
            assert match(probe), probe
        for probe in ["b", "ba"]:
            assert not match(probe), probe


class TestFragmentCache:
    def test_unchanged_subtrees_are_reused(self):
        engine = Engine()
        big = rx.concat(rx.Lit("hello"), rx.star(rx.CharClass(frozenset("ab"))))
        engine.compile(big)
        built = engine.states_built
        # A new root over the same (structurally equal) subtree only
        # builds the new spine, not the subtree again.
        engine.compile(rx.concat(rx.Lit("hello"), rx.star(rx.CharClass(frozenset("ab"))), rx.Lit("!")))
        assert engine.states_built - built < built
        assert engine.fragment_hits > 0

    def test_identical_compile_builds_nothing(self):
        engine = Engine()
        expr = rx.alt(rx.Lit("foo"), rx.star(rx.Lit("bar")))
        engine.compile(expr)
        built = engine.states_built
        engine.compile(rx.alt(rx.Lit("foo"), rx.star(rx.Lit("bar"))))
        assert engine.states_built == built


class TestMembershipSession:
    def test_versions_share_matchers(self):
        session = MembershipSession()
        first = session.matcher(rx.Lit("ab"))
        second = session.matcher(rx.Lit("ab"))
        assert first is second

    def test_matcher_memoizes_results(self):
        session = MembershipSession()
        match = session.matcher(rx.star(rx.Lit("ab")))
        assert match("abab")
        assert match("abab")  # memo hit; same result
        assert not match("aba")

    def test_remember_and_covers(self):
        session = MembershipSession()
        session.remember(rx.star(rx.Lit("a")))
        session.remember(rx.Lit("bc"))
        assert session.covers("aaa")
        assert session.covers("bc")
        assert not session.covers("ab")

    def test_engine_off_falls_back_to_scratch(self):
        session = MembershipSession(use_engine=False)
        assert session.engine is None
        match = session.matcher(rx.star(rx.Lit("ab")))
        assert match("abab")
        assert not match("aba")
        session.remember(rx.Lit("z"))
        assert session.covers("z")


@given(expr=regex_trees(), probe=probes)
@settings(max_examples=150, deadline=None)
def test_engine_agrees_with_scratch_compilation(expr, probe):
    assert Engine().matcher(expr)(probe) == compile_regex(expr).matches(probe)


@given(expr=regex_trees(), probe=probes)
@settings(max_examples=100, deadline=None)
def test_engine_agrees_with_python_re(expr, probe):
    compiled = re.compile(rx.to_python_re(expr))
    assert Engine().matcher(expr)(probe) == bool(compiled.fullmatch(probe))


@given(expr=regex_trees(), seed=st.integers(0, 10_000))
@settings(max_examples=150, deadline=None)
def test_engine_accepts_sampled_members(expr, seed):
    text = sample_regex(expr, random.Random(seed))
    assert Engine().matcher(expr)(text)


@given(expr=regex_trees(), seed=st.integers(0, 10_000), probe=probes)
@settings(max_examples=100, deadline=None)
def test_shared_engine_stays_correct_across_compilations(expr, seed, probe):
    """One engine compiling many expressions must not cross-contaminate."""
    engine = Engine()
    other = sample_regex(expr, random.Random(seed))
    match_expr = engine.matcher(expr)
    match_star = engine.matcher(rx.star(expr))
    assert match_expr(probe) == compile_regex(expr).matches(probe)
    assert match_star(other)  # one iteration of the starred language


class TestCacheOverflowFallback:
    """The ``MAX_CACHED_SETS`` overflow path (satellite of ISSUE 4).

    Past the bound, :class:`ComposedNFA` stops interning state sets and
    falls back to plain set-of-states simulation. The fallback must
    agree with from-scratch matching, and the start-state ε-closure —
    recomputed per call before the fix — is paid once and cached.
    """

    #: A language with enough lazy-DFA states to overflow a tiny bound:
    #: (a|b)* ab (a|b)* forces several distinct state sets per probe.
    EXPR = rx.concat(
        rx.star(rx.CharClass(frozenset("ab"))),
        rx.Lit("ab"),
        rx.star(rx.CharClass(frozenset("ab"))),
    )

    def overflowed(self, bound):
        nfa = Engine().compile(self.EXPR)
        nfa.MAX_CACHED_SETS = bound  # instance attr shadows the class
        return nfa

    def probe_strings(self):
        rng = random.Random(7)
        fixed = ["", "a", "b", "ab", "ba", "aab", "abab", "bbbb", "abba"]
        rand = [
            "".join(rng.choice("ab") for _ in range(rng.randrange(1, 10)))
            for _ in range(60)
        ]
        return fixed + rand

    def test_full_table_agrees_with_scratch_matching(self):
        # Bound 0: nothing interns, not even the start set — every
        # match runs entirely on the slow path.
        nfa = self.overflowed(bound=0)
        reference = compile_regex(self.EXPR).matches
        for probe in self.probe_strings():
            assert nfa.matches(probe) == reference(probe), probe
        assert nfa._start_id == -2

    def test_mid_match_overflow_agrees(self):
        # A bound of a few sets makes the overflow happen *during* a
        # match (fast path first, slow path for the rest of the text).
        reference = compile_regex(self.EXPR).matches
        for bound in (1, 2, 3, 4):
            nfa = self.overflowed(bound=bound)
            for probe in self.probe_strings():
                assert nfa.matches(probe) == reference(probe), (bound, probe)

    def test_overflowed_start_closure_computed_once(self):
        nfa = self.overflowed(bound=0)
        assert nfa.matches("ab")
        assert nfa._start_id == -2
        calls = []
        original = nfa.eps_closure

        def counting_eps_closure(states):
            calls.append(states)
            return original(states)

        nfa.eps_closure = counting_eps_closure
        # Matching the empty string from overflow mode consumes no
        # characters: with the start set cached there is nothing left
        # to ε-close, so zero closure calls happen per match. (Before
        # the cache, every call re-closed the start state.)
        for _ in range(3):
            assert not nfa.matches("")
        assert calls == []


@given(expr=regex_trees(), probe=probes, bound=st.integers(0, 3))
@settings(max_examples=100, deadline=None)
def test_overflow_agrees_on_random_asts(expr, probe, bound):
    nfa = Engine().compile(expr)
    nfa.MAX_CACHED_SETS = bound
    assert nfa.matches(probe) == compile_regex(expr).matches(probe)
