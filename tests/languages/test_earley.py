"""Earley parser tests: classic grammars, ε-handling, parse trees."""


from repro.languages.cfg import CharSet, Grammar, Nonterminal, Production
from repro.languages.earley import parse, recognize


def balanced_parens() -> Grammar:
    s = Nonterminal("S")
    return Grammar(
        s,
        [
            Production(s, ()),
            Production(s, ("(", s, ")", s)),
        ],
    )


def arithmetic() -> Grammar:
    e, t, f = Nonterminal("E"), Nonterminal("T"), Nonterminal("F")
    digit = CharSet(frozenset("0123456789"))
    return Grammar(
        e,
        [
            Production(e, (e, "+", t)),
            Production(e, (t,)),
            Production(t, (t, "*", f)),
            Production(t, (f,)),
            Production(f, ("(", e, ")")),
            Production(f, (digit,)),
        ],
    )


class TestRecognize:
    def test_balanced_parens_accepts(self):
        grammar = balanced_parens()
        for text in ["", "()", "(())", "()()", "(()())()"]:
            assert recognize(grammar, text), text

    def test_balanced_parens_rejects(self):
        grammar = balanced_parens()
        for text in ["(", ")", ")(", "(()", "())", "x"]:
            assert not recognize(grammar, text), text

    def test_left_recursive_arithmetic(self):
        grammar = arithmetic()
        for text in ["1", "1+2", "1+2*3", "(1+2)*3", "((1))"]:
            assert recognize(grammar, text), text
        for text in ["", "+", "1+", "1**2", "(1+2", "ab"]:
            assert not recognize(grammar, text), text

    def test_multichar_literal_scanning(self):
        s = Nonterminal("S")
        grammar = Grammar(
            s, [Production(s, ("<a>", s, "</a>")), Production(s, ("hi",))]
        )
        assert recognize(grammar, "<a><a>hi</a></a>")
        assert not recognize(grammar, "<a>hi</a")
        assert not recognize(grammar, "<a><a>hi</a>")

    def test_epsilon_heavy_grammar(self):
        # S -> A A A ; A -> ε | a  (nullable completions everywhere)
        s, a = Nonterminal("S"), Nonterminal("A")
        grammar = Grammar(
            s,
            [
                Production(s, (a, a, a)),
                Production(a, ()),
                Production(a, ("a",)),
            ],
        )
        for text in ["", "a", "aa", "aaa"]:
            assert recognize(grammar, text), text
        assert not recognize(grammar, "aaaa")

    def test_unit_production_cycle(self):
        # A -> B -> A plus a terminal escape; must not loop.
        a, b = Nonterminal("A"), Nonterminal("B")
        grammar = Grammar(
            a,
            [
                Production(a, (b,)),
                Production(b, (a,)),
                Production(a, ("x",)),
            ],
        )
        assert recognize(grammar, "x")
        assert not recognize(grammar, "")
        assert not recognize(grammar, "xx")

    def test_charset_symbols(self):
        s = Nonterminal("S")
        vowels = CharSet(frozenset("aeiou"))
        grammar = Grammar(
            s, [Production(s, ()), Production(s, (vowels, s))]
        )
        assert recognize(grammar, "aeea")
        assert not recognize(grammar, "xyz")


class TestParse:
    def test_tree_text_roundtrip(self):
        grammar = arithmetic()
        for text in ["1", "1+2*3", "(1+2)*(3+4)"]:
            tree = parse(grammar, text)
            assert tree is not None
            assert tree.text() == text

    def test_parse_returns_none_on_reject(self):
        assert parse(balanced_parens(), "(((") is None

    def test_tree_structure(self):
        grammar = balanced_parens()
        tree = parse(grammar, "(())")
        assert tree is not None
        assert tree.symbol == Nonterminal("S")
        # Root used the recursive production.
        assert len(tree.production.body) == 4

    def test_tree_nodes_and_size(self):
        grammar = balanced_parens()
        tree = parse(grammar, "()()")
        nodes = tree.nodes()
        assert all(n.symbol == Nonterminal("S") for n in nodes)
        assert tree.size() == len(nodes)

    def test_ambiguous_grammar_still_parses(self):
        # S -> S S | a  is ambiguous for "aaa"; any parse is acceptable.
        s = Nonterminal("S")
        grammar = Grammar(
            s, [Production(s, (s, s)), Production(s, ("a",))]
        )
        tree = parse(grammar, "aaa")
        assert tree is not None
        assert tree.text() == "aaa"

    def test_nullable_tree(self):
        grammar = balanced_parens()
        tree = parse(grammar, "")
        assert tree is not None
        assert tree.text() == ""


class TestAgainstRegexEngine:
    def test_right_linear_grammar_matches_star(self):
        # S -> ε | 'ab' S   should equal (ab)*.
        from repro.languages.regex import Lit, star

        s = Nonterminal("S")
        grammar = Grammar(
            s, [Production(s, ()), Production(s, ("ab", s))]
        )
        expr = star(Lit("ab"))
        for probe in ["", "ab", "abab", "aba", "ba", "ababab"]:
            assert recognize(grammar, probe) == expr.matches(probe), probe
