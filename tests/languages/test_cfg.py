"""Tests for the CFG representation and its operations."""

import pytest

from repro.languages.cfg import (
    CharSet,
    Grammar,
    Nonterminal,
    Production,
    grammar_union,
)
from repro.languages.earley import recognize

A, B, C = Nonterminal("A"), Nonterminal("B"), Nonterminal("C")


def test_empty_literal_rejected_in_body():
    with pytest.raises(ValueError):
        Production(A, ("",))


def test_charset_requires_nonempty():
    with pytest.raises(ValueError):
        CharSet(frozenset())


def test_start_symbol_must_have_productions():
    with pytest.raises(ValueError):
        Grammar(A, [Production(B, ("b",))])


def test_productions_for():
    grammar = Grammar(
        A, [Production(A, ("a",)), Production(A, (B,)), Production(B, ())]
    )
    assert len(grammar.productions_for(A)) == 2
    assert grammar.productions_for(Nonterminal("Z")) == []


def test_alphabet_collects_chars():
    grammar = Grammar(
        A,
        [
            Production(A, ("ab", CharSet(frozenset("cd")))),
        ],
    )
    assert grammar.alphabet() == frozenset("abcd")


def test_nullable_computation():
    grammar = Grammar(
        A,
        [
            Production(A, (B, C)),
            Production(B, ()),
            Production(C, ()),
            Production(C, ("c",)),
        ],
    )
    nullable = grammar.nullable_nonterminals()
    assert nullable == frozenset({A, B, C})


def test_nullable_excludes_terminal_only():
    grammar = Grammar(A, [Production(A, ("a",))])
    assert grammar.nullable_nonterminals() == frozenset()


def test_rename_equates_nonterminals():
    # A -> 'x' B ; B -> 'y' ; C -> 'z'; equating B and C enlarges L.
    grammar = Grammar(
        A,
        [
            Production(A, ("x", B)),
            Production(B, ("y",)),
            Production(B, (C,)),
            Production(C, ("z",)),
        ],
    )
    merged = grammar.rename_nonterminals({C: B})
    assert recognize(merged, "xy")
    assert recognize(merged, "xz")
    assert Nonterminal("C") not in merged.nonterminals()


def test_rename_drops_duplicate_productions():
    grammar = Grammar(
        A, [Production(A, (B,)), Production(A, (C,)),
            Production(B, ("b",)), Production(C, ("b",))]
    )
    merged = grammar.rename_nonterminals({C: B})
    bodies = [p for p in merged.productions if p.head == A]
    assert len(bodies) == 1  # A -> B twice collapses


def test_restricted_to_reachable():
    grammar = Grammar(
        A,
        [
            Production(A, ("a",)),
            Production(B, ("b",)),  # unreachable
        ],
    )
    trimmed = grammar.restricted_to_reachable()
    assert trimmed.nonterminals() == [A]


def test_grammar_union_combines_languages():
    g1 = Grammar(A, [Production(A, ("x",))])
    g2 = Grammar(A, [Production(A, ("y",))])
    union = grammar_union([g1, g2])
    assert recognize(union, "x")
    assert recognize(union, "y")
    assert not recognize(union, "xy")


def test_grammar_union_requires_nonempty():
    with pytest.raises(ValueError):
        grammar_union([])


def test_str_rendering():
    grammar = Grammar(
        A, [Production(A, ()), Production(A, ("a", B)),
            Production(B, ("b",))]
    )
    rendered = str(grammar)
    assert rendered.splitlines()[0].startswith("A ->")
    assert "ε" in rendered
