"""Tests for grammar and regex sampling (§8.1)."""

import random

import pytest

from repro.languages.cfg import CharSet, Grammar, Nonterminal, Production
from repro.languages.earley import recognize
from repro.languages.regex import CharClass, Lit, alt, concat, star
from repro.languages.sampler import GrammarSampler, sample_regex

S = Nonterminal("S")


def recursive_grammar() -> Grammar:
    return Grammar(
        S,
        [
            Production(S, ()),
            Production(S, ("(", S, ")", S)),
        ],
    )


class TestGrammarSampler:
    def test_samples_are_in_language(self):
        grammar = recursive_grammar()
        sampler = GrammarSampler(grammar, random.Random(0))
        for _ in range(100):
            assert recognize(grammar, sampler.sample())

    def test_deterministic_given_seed(self):
        grammar = recursive_grammar()
        first = GrammarSampler(grammar, random.Random(42))
        second = GrammarSampler(grammar, random.Random(42))
        assert [first.sample() for _ in range(20)] == [
            second.sample() for _ in range(20)
        ]

    def test_depth_limit_terminates_explosive_grammar(self):
        # S -> S S | 'a' has unbounded expected size under uniform choice.
        grammar = Grammar(
            S, [Production(S, (S, S)), Production(S, ("a",))]
        )
        sampler = GrammarSampler(
            grammar, random.Random(1), max_depth=8, max_nodes=200
        )
        for _ in range(50):
            text = sampler.sample()
            assert text
            assert set(text) == {"a"}

    def test_node_budget_bounds_width(self):
        # Several recursive productions per head: heavy-tailed width.
        grammar = Grammar(
            S,
            [
                Production(S, ()),
                Production(S, (S, "a")),
                Production(S, (S, "b")),
                Production(S, (S, "c")),
            ],
        )
        sampler = GrammarSampler(
            grammar, random.Random(2), max_depth=500, max_nodes=100
        )
        for _ in range(30):
            assert len(sampler.sample()) <= 120

    def test_unproductive_start_raises(self):
        grammar = Grammar(S, [Production(S, (S, "a"))])
        with pytest.raises(ValueError):
            GrammarSampler(grammar)

    def test_charset_sampling(self):
        grammar = Grammar(
            S, [Production(S, (CharSet(frozenset("xyz")),))]
        )
        sampler = GrammarSampler(grammar, random.Random(3))
        seen = {sampler.sample() for _ in range(60)}
        assert seen == {"x", "y", "z"}

    def test_sample_tree_text_matches_sample(self):
        grammar = recursive_grammar()
        sampler = GrammarSampler(grammar, random.Random(4))
        tree = sampler.sample_tree()
        assert recognize(grammar, tree.text())

    def test_sample_from_named_nonterminal(self):
        t = Nonterminal("T")
        grammar = Grammar(
            S, [Production(S, (t, t)), Production(t, ("q",))]
        )
        sampler = GrammarSampler(grammar, random.Random(5))
        assert sampler.sample(t) == "q"
        assert sampler.sample() == "qq"


class TestRegexSampler:
    def test_samples_match_expression(self):
        expr = concat(
            star(alt(Lit("ab"), CharClass(frozenset("xy")))), Lit("!")
        )
        rng = random.Random(0)
        for _ in range(100):
            assert expr.matches(sample_regex(expr, rng))

    def test_star_respects_max_reps(self):
        expr = star(Lit("a"))
        rng = random.Random(1)
        for _ in range(50):
            assert len(sample_regex(expr, rng, max_reps=3)) <= 3

    def test_empty_language_raises(self):
        from repro.languages.regex import EMPTY

        with pytest.raises(ValueError):
            sample_regex(EMPTY, random.Random(0))
