"""Unit tests for the regex AST (construction, printing, matching)."""

import pytest

from repro.languages import regex as rx


class TestConstruction:
    def test_lit_requires_nonempty(self):
        with pytest.raises(ValueError):
            rx.Lit("")

    def test_literal_helper_maps_empty_to_epsilon(self):
        assert isinstance(rx.literal(""), rx.Epsilon)
        assert isinstance(rx.literal("ab"), rx.Lit)

    def test_charclass_requires_single_chars(self):
        with pytest.raises(ValueError):
            rx.CharClass({"ab"})
        with pytest.raises(ValueError):
            rx.CharClass(set())

    def test_concat_flattens_nested(self):
        inner = rx.concat(rx.Lit("a"), rx.Lit("b"))
        outer = rx.concat(inner, rx.Lit("c"))
        assert isinstance(outer, rx.Lit)  # adjacent literals fuse
        assert outer.text == "abc"

    def test_concat_drops_epsilon(self):
        result = rx.concat(rx.EPSILON, rx.Lit("x"), rx.EPSILON)
        assert result == rx.Lit("x")

    def test_concat_of_nothing_is_epsilon(self):
        assert isinstance(rx.concat(), rx.Epsilon)

    def test_concat_with_empty_set_is_empty(self):
        assert isinstance(rx.concat(rx.Lit("a"), rx.EMPTY), rx.EmptySet)

    def test_alt_deduplicates(self):
        result = rx.alt(rx.Lit("a"), rx.Lit("a"), rx.Lit("b"))
        assert isinstance(result, rx.Alt)
        assert len(result.options) == 2

    def test_alt_flattens(self):
        result = rx.alt(rx.alt(rx.Lit("a"), rx.Lit("b")), rx.Lit("c"))
        assert len(result.options) == 3

    def test_alt_single_option_collapses(self):
        assert rx.alt(rx.Lit("a")) == rx.Lit("a")

    def test_star_collapses_star_of_star(self):
        once = rx.star(rx.Lit("a"))
        assert rx.star(once) == once

    def test_star_of_epsilon_is_epsilon(self):
        assert isinstance(rx.star(rx.EPSILON), rx.Epsilon)

    def test_equality_and_hash(self):
        a1 = rx.concat(rx.Lit("a"), rx.star(rx.Lit("b")))
        a2 = rx.concat(rx.Lit("a"), rx.star(rx.Lit("b")))
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != rx.Lit("ab")


class TestNullable:
    def test_epsilon_nullable(self):
        assert rx.EPSILON.nullable()

    def test_literal_not_nullable(self):
        assert not rx.Lit("a").nullable()

    def test_star_nullable(self):
        assert rx.star(rx.Lit("a")).nullable()

    def test_concat_nullable_iff_all(self):
        assert rx.Concat(
            [rx.star(rx.Lit("a")), rx.star(rx.Lit("b"))]
        ).nullable()
        assert not rx.Concat([rx.star(rx.Lit("a")), rx.Lit("b")]).nullable()

    def test_alt_nullable_iff_any(self):
        assert rx.Alt([rx.Lit("a"), rx.EPSILON]).nullable()
        assert not rx.Alt([rx.Lit("a"), rx.Lit("b")]).nullable()


class TestMatching:
    def test_literal(self):
        assert rx.Lit("abc").matches("abc")
        assert not rx.Lit("abc").matches("ab")
        assert not rx.Lit("abc").matches("abcd")

    def test_epsilon(self):
        assert rx.EPSILON.matches("")
        assert not rx.EPSILON.matches("a")

    def test_empty_set(self):
        assert not rx.EMPTY.matches("")
        assert not rx.EMPTY.matches("a")

    def test_star(self):
        expr = rx.star(rx.Lit("ab"))
        for n in range(5):
            assert expr.matches("ab" * n)
        assert not expr.matches("aba")

    def test_alternation(self):
        expr = rx.alt(rx.Lit("cat"), rx.Lit("dog"))
        assert expr.matches("cat")
        assert expr.matches("dog")
        assert not expr.matches("cow")

    def test_char_class(self):
        expr = rx.CharClass(set("abc"))
        assert expr.matches("b")
        assert not expr.matches("d")
        assert not expr.matches("ab")

    def test_nested_structure(self):
        # (a|b)*c
        expr = rx.concat(
            rx.star(rx.alt(rx.Lit("a"), rx.Lit("b"))), rx.Lit("c")
        )
        assert expr.matches("c")
        assert expr.matches("abbac")
        assert not expr.matches("abba")

    def test_matcher_is_cached(self):
        expr = rx.star(rx.Lit("x"))
        assert expr.matches("xx")
        first = expr._nfa
        assert expr.matches("xxx")
        assert expr._nfa is first


class TestAlphabetAndWalk:
    def test_alphabet(self):
        expr = rx.concat(
            rx.Lit("ab"), rx.star(rx.CharClass(set("cd")))
        )
        assert expr.alphabet() == frozenset("abcd")

    def test_walk_counts_nodes(self):
        expr = rx.concat(rx.Lit("a"), rx.star(rx.Lit("b")))
        kinds = [type(n).__name__ for n in expr.walk()]
        assert kinds.count("Lit") == 2
        assert kinds.count("Star") == 1

    def test_regex_size(self):
        expr = rx.alt(rx.Lit("a"), rx.star(rx.Lit("b")))
        assert rx.regex_size(expr) == 4


class TestPrinting:
    def test_paper_notation(self):
        expr = rx.star(
            rx.concat(
                rx.Lit("<a>"),
                rx.star(rx.alt(rx.Lit("h"), rx.Lit("i"))),
                rx.Lit("</a>"),
            )
        )
        assert str(expr) == "(<a>(h + i)*</a>)*"

    def test_char_class_ranges(self):
        rendered = rx.format_char_class(frozenset("abcdxyz0"))
        assert "a-d" in rendered
        assert "x-z" in rendered
        assert "0" in rendered

    def test_quoting_metacharacters(self):
        assert str(rx.Lit("a*b")) == "a\\*b"

    def test_space_rendered_visibly(self):
        assert "␣" in str(rx.Lit("a b"))


class TestToPythonRe:
    def test_agreement_on_examples(self):
        import re

        cases = [
            (rx.star(rx.Lit("ab")), ["", "ab", "abab", "a", "ba"]),
            (
                rx.alt(rx.Lit("x"), rx.concat(rx.Lit("y"), rx.Lit("z"))),
                ["x", "yz", "", "xy"],
            ),
            (
                rx.concat(rx.CharClass(set("ab")), rx.star(rx.Lit("c"))),
                ["a", "bccc", "c", "ab"],
            ),
        ]
        for expr, probes in cases:
            compiled = re.compile(rx.to_python_re(expr))
            for probe in probes:
                assert bool(compiled.fullmatch(probe)) == expr.matches(
                    probe
                ), (expr, probe)
