"""Tests for Thompson NFA construction and simulation."""

from repro.languages import regex as rx
from repro.languages.nfa_match import NFA, compile_regex, regex_matches


class TestNFAPrimitives:
    def test_manual_automaton(self):
        nfa = NFA()
        s0, s1, s2 = nfa.new_state(), nfa.new_state(), nfa.new_state()
        nfa.start, nfa.accept = s0, s2
        nfa.add_char(s0, frozenset("a"), s1)
        nfa.add_eps(s1, s2)
        assert nfa.matches("a")
        assert not nfa.matches("")
        assert not nfa.matches("aa")

    def test_eps_closure_transitive(self):
        nfa = NFA()
        states = [nfa.new_state() for _ in range(4)]
        nfa.add_eps(states[0], states[1])
        nfa.add_eps(states[1], states[2])
        closure = nfa.eps_closure(frozenset({states[0]}))
        assert states[2] in closure
        assert states[3] not in closure

    def test_step_dead_end(self):
        nfa = NFA()
        s0 = nfa.new_state()
        nfa.start = nfa.accept = s0
        assert nfa.step(frozenset({s0}), "x") == frozenset()


class TestCompilation:
    def test_no_exponential_blowup(self):
        # (a|aa)^16 — catastrophic for backtrackers, linear here.
        unit = rx.alt(rx.Lit("a"), rx.Lit("aa"))
        expr = rx.Concat([unit] * 16)
        nfa = compile_regex(expr)
        assert nfa.matches("a" * 16)
        assert nfa.matches("a" * 24)
        assert not nfa.matches("a" * 15)

    def test_star_zero_iterations(self):
        assert regex_matches(rx.star(rx.Lit("abc")), "")

    def test_empty_set_matches_nothing(self):
        nfa = compile_regex(rx.EMPTY)
        assert not nfa.matches("")
        assert not nfa.matches("a")

    def test_charclass_edge(self):
        nfa = compile_regex(rx.CharClass(frozenset("pq")))
        assert nfa.matches("p")
        assert nfa.matches("q")
        assert not nfa.matches("r")

    def test_deep_nesting(self):
        expr = rx.Lit("x")
        for _ in range(30):
            expr = rx.star(rx.concat(expr, rx.Lit("y")))
        nfa = compile_regex(expr)
        assert nfa.matches("")  # outermost star
