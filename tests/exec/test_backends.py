"""Unit tests for the execution backends (serial / thread / process)."""

import threading
import time

import pytest

from repro.exec import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_backend,
)


def square(x):
    return x * x


def explode(x):
    raise ValueError("boom on {}".format(x))


def slow_identity(x):
    time.sleep(0.15)
    return x


def all_executors():
    return [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)]


@pytest.mark.parametrize(
    "make", [SerialExecutor, lambda: ThreadExecutor(2),
             lambda: ProcessExecutor(2)],
    ids=["serial", "thread", "process"],
)
def test_unordered_returns_every_result_with_its_index(make):
    with make() as executor:
        results = dict(executor.unordered(square, [3, 1, 4, 1, 5]))
    assert results == {0: 9, 1: 1, 2: 16, 3: 1, 4: 25}


@pytest.mark.parametrize(
    "make", [SerialExecutor, lambda: ThreadExecutor(2),
             lambda: ProcessExecutor(2)],
    ids=["serial", "thread", "process"],
)
def test_worker_exception_propagates_unwrapped(make):
    # Executors are exception-transparent: callers catch the oracle
    # stack's control-flow exceptions (OracleBudgetExceeded,
    # LearningTimeout) by their original type, exactly as they would
    # around an inline call.
    with make() as executor:
        with pytest.raises(ValueError, match="boom on 7"):
            list(executor.unordered(explode, [7]))


def test_budget_exception_propagates_through_sharded_run():
    from repro.core.glade import GladeConfig
    from repro.core.pipeline import LearningPipeline
    from repro.learning.oracle import BudgetOracle, OracleBudgetExceeded

    def ab(text):
        return set(text) <= set("ab")

    config = GladeConfig(alphabet="ab", enable_chargen=False,
                         jobs=2, backend="thread")
    oracle = BudgetOracle(ab, budget=3)
    with pytest.raises(OracleBudgetExceeded):
        LearningPipeline(oracle, config=config).run(["abab", "ab"])


def test_serial_runs_lazily_and_in_order():
    # The sequential pipeline relies on laziness: it decides whether to
    # submit task i+1 only after consuming task i's result (the §6.1
    # covered-seed skip). The payload generator must therefore be
    # pulled one element at a time, interleaved with execution.
    events = []

    def payloads():
        for value in range(3):
            events.append(("pulled", value))
            yield value

    executor = SerialExecutor()
    for index, result in executor.unordered(square, payloads()):
        events.append(("done", index, result))
    assert events == [
        ("pulled", 0), ("done", 0, 0),
        ("pulled", 1), ("done", 1, 1),
        ("pulled", 2), ("done", 2, 4),
    ]


def test_thread_executor_overlaps_blocking_tasks():
    started = time.perf_counter()
    with ThreadExecutor(4) as executor:
        results = dict(executor.unordered(slow_identity, list(range(4))))
    elapsed = time.perf_counter() - started
    assert results == {i: i for i in range(4)}
    # Four 150ms sleeps overlapped on four threads: sequential would
    # take 600ms, overlapped ~150ms; the generous 450ms bound leaves
    # ~300ms of scheduler-jitter headroom on loaded CI runners.
    assert elapsed < 0.45


def test_thread_executor_shares_objects_with_tasks():
    # Thread tasks see the same object graph (no pickling).
    box = {"hits": 0}
    lock = threading.Lock()

    def bump(_payload):
        with lock:
            box["hits"] += 1
        return box

    with ThreadExecutor(2) as executor:
        results = [r for _i, r in executor.unordered(bump, [1, 2, 3])]
    assert box["hits"] == 3
    assert all(r is box for r in results)


def test_resolve_backend_auto():
    assert resolve_backend("auto", 1) == "serial"
    assert resolve_backend("auto", 4, square) == "process"  # picklable
    unpicklable = lambda s: True  # noqa: E731
    assert resolve_backend("auto", 4, unpicklable) == "thread"
    assert resolve_backend("auto", 4, None) == "process"


def test_resolve_backend_one_job_is_always_serial():
    # A single-worker pool adds overhead and trades away the §6.1
    # pre-skip for speculation with nothing to overlap.
    for name in ("auto", "thread", "process"):
        assert resolve_backend(name, 1, square) == "serial"


def test_resolve_backend_explicit_names_pass_through():
    for name in ("thread", "process"):
        assert resolve_backend(name, 2, square) == name
    with pytest.raises(ValueError, match="unknown execution backend"):
        resolve_backend("gpu", 2)
    # serial with several jobs is a contradiction, not a silent noop.
    with pytest.raises(ValueError, match="single-worker"):
        resolve_backend("serial", 4)


def test_process_backend_rejects_unpicklable_oracle():
    with pytest.raises(ValueError, match="picklable oracle"):
        resolve_backend("process", 2, lambda s: True)


def test_make_executor_resolves_auto():
    executor = make_executor("auto", 1)
    assert executor.name == "serial"
    with make_executor("auto", 3, square) as executor:
        assert executor.name == "process"
        assert executor.jobs == 3


def test_jobs_must_be_positive():
    with pytest.raises(ValueError):
        ThreadExecutor(0)
    with pytest.raises(ValueError):
        ProcessExecutor(-1)


class TestUnorderedStream:
    """Lazy, windowed submission — the wavefront scheduler's substrate."""

    @pytest.mark.parametrize(
        "make", [SerialExecutor, lambda: ThreadExecutor(2),
                 lambda: ProcessExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_stream_returns_every_result_with_its_index(self, make):
        with make() as executor:
            results = dict(
                executor.unordered_stream(square, iter([3, 1, 4, 1, 5]))
            )
        assert results == {0: 9, 1: 1, 2: 16, 3: 1, 4: 25}

    @pytest.mark.parametrize(
        "make", [lambda: ThreadExecutor(2), lambda: ProcessExecutor(2)],
        ids=["thread", "process"],
    )
    def test_stream_exception_propagates_unwrapped(self, make):
        with make() as executor:
            with pytest.raises(ValueError, match="boom on 7"):
                list(executor.unordered_stream(explode, iter([7])))

    def test_window_bounds_in_flight_submissions(self):
        # With window 2, at most 2 payloads may ever have been pulled
        # beyond the number of results already yielded.
        pulls = []

        def payloads():
            for value in range(6):
                pulls.append(value)
                yield value

        with ThreadExecutor(4) as executor:
            seen = 0
            for _index, _result in executor.unordered_stream(
                square, payloads(), window=2
            ):
                assert len(pulls) <= seen + 2
                seen += 1
        assert seen == 6

    def test_pulls_happen_on_consumer_thread_after_each_result(self):
        # The payload generator must observe state the consumer updated
        # while processing earlier results — the property the phase-2
        # wavefront's skip test and verdict table rely on.
        committed = []
        main_thread = threading.current_thread()

        def payloads():
            for value in range(4):
                assert threading.current_thread() is main_thread
                yield (value, tuple(committed))

        def task(payload):
            return payload

        with ThreadExecutor(2) as executor:
            for _index, (value, snapshot) in executor.unordered_stream(
                task, payloads(), window=1
            ):
                # window=1 serializes: payload k was generated after
                # every earlier result was consumed and recorded.
                assert len(snapshot) == value
                committed.append(value)

    def test_serial_stream_is_lazy_and_in_order(self):
        events = []

        def payloads():
            for value in range(3):
                events.append(("pulled", value))
                yield value

        for index, result in SerialExecutor().unordered_stream(
            square, payloads()
        ):
            events.append(("done", index, result))
        assert events == [
            ("pulled", 0), ("done", 0, 0),
            ("pulled", 1), ("done", 1, 1),
            ("pulled", 2), ("done", 2, 4),
        ]
