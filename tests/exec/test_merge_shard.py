"""Pair-sharded phase 2: tasks, the query planner, and the wavefront.

Unit-level coverage for :mod:`repro.exec.merge_shard`: worker tasks
keep sequential short-circuit semantics, the known-verdict table
dedupes check strings across pairs, and the wavefront commits in plan
order — discarding speculatively evaluated pairs exactly as the serial
loop's transitive skip would, with counted totals equal to the serial
loop's at any completion order.
"""

import threading

from repro.core.context import Context
from repro.core.gtree import GConcat, GConst, GRoot, GStar
from repro.core.phase2 import (
    PAIR_MERGED,
    PAIR_SKIPPED,
    MergeCommitter,
    merge_repetitions,
    plan_merges,
)
from repro.core.translate import translate_trees
from repro.exec.backends import Executor, SerialExecutor, ThreadExecutor
from repro.exec.merge_shard import (
    decode_pair,
    pair_payload,
    run_merge_wavefront,
    run_pair_task,
)
from repro.learning.oracle import CachingOracle, CountingOracle


class CountingBase:
    """Counts raw oracle invocations; thread-safe for pool backends."""

    def __init__(self, fn):
        self.fn = fn
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, text):
        with self._lock:
            self.calls += 1
        return self.fn(text)


def make_stars(names):
    """One flat tree of sibling stars, each with a distinct context.

    Star ids are explicit (100, 101, ...) so two calls build identical
    trees — comparisons between separately built runs are then
    byte-exact, nonterminal names included.
    """
    stars = []
    for index, name in enumerate(names):
        context = Context("<{}>".format(index), "</{}>".format(index))
        stars.append(
            GStar(GConst(name, context), name, context, star_id=100 + index)
        )
    root = GRoot(GConcat(list(stars)))
    grammar = translate_trees([root])
    return grammar, stars


class FakePair:
    def __init__(self, index, checks):
        self.index = index
        self.checks = tuple(checks)


class TestPairTask:
    def test_sequential_short_circuits_at_first_rejection(self):
        oracle = CountingBase(lambda text: text != "no")
        payload = pair_payload(
            FakePair(3, ["a", "no", "later"]), oracle, {}, concurrent=False
        )
        outcome = decode_pair(run_pair_task(payload))
        assert outcome.index == 3
        assert outcome.verdicts == (True, False)
        assert outcome.invocations == 2
        assert oracle.calls == 2  # "later" never reached the oracle
        assert outcome.learned == {"a": True, "no": False}

    def test_known_table_answers_without_oracle(self):
        oracle = CountingBase(lambda text: True)
        known = {"a": True, "b": True, "c": True}
        payload = pair_payload(
            FakePair(0, ["a", "b", "c"]), oracle, known, concurrent=False
        )
        outcome = decode_pair(run_pair_task(payload))
        assert outcome.verdicts == (True, True, True)
        assert outcome.invocations == 0
        assert oracle.calls == 0
        assert outcome.learned == {}

    def test_known_rejection_short_circuits_for_free(self):
        oracle = CountingBase(lambda text: True)
        payload = pair_payload(
            FakePair(0, ["bad", "x"]), oracle, {"bad": False},
            concurrent=False,
        )
        outcome = decode_pair(run_pair_task(payload))
        assert outcome.verdicts == (False,)
        assert oracle.calls == 0

    def test_duplicate_checks_within_a_task_query_once(self):
        oracle = CountingBase(lambda text: True)
        payload = pair_payload(
            FakePair(0, ["a", "a", "b"]), oracle, {}, concurrent=False
        )
        outcome = decode_pair(run_pair_task(payload))
        assert outcome.verdicts == (True, True, True)
        assert outcome.invocations == 2

    def test_concurrent_mode_evaluates_every_check(self):
        # A concurrent oracle stack takes the pair's checks as one
        # batch — no short-circuit — matching query_all's semantics.
        oracle = CountingBase(lambda text: text != "no")
        payload = pair_payload(
            FakePair(0, ["a", "no", "later"]), oracle, {}, concurrent=True
        )
        outcome = decode_pair(run_pair_task(payload))
        assert outcome.verdicts == (True, False, True)
        assert outcome.invocations == 3


class ReorderingExecutor(Executor):
    """Runs every task inline, then yields results in *reverse* order.

    The adversarial completion order for an in-order committer: the
    last pair's outcome arrives first and must sit buffered until the
    whole frontier ahead of it has committed.
    """

    name = "reordering"
    jobs = 2

    def unordered_stream(self, fn, payloads, window=None):
        results = [(i, fn(p)) for i, p in enumerate(payloads)]
        return iter(list(reversed(results)))


def test_wavefront_matches_serial_loop_counts_and_grammar():
    names = ["ab", "cd", "ab", "ef"]
    oracle_fn = lambda text: "e" not in text  # noqa: E731

    grammar, stars = make_stars(names)
    serial_counting = CountingOracle(CachingOracle(oracle_fn))
    serial = merge_repetitions(grammar, stars, serial_counting)

    grammar2, stars2 = make_stars(names)
    plan = plan_merges(stars2, mixed=True, n_samples=2)
    committer = MergeCommitter(plan)
    with ThreadExecutor(4) as executor:
        stats = run_merge_wavefront(
            executor, plan, committer, CountingBase(oracle_fn)
        )
    result = committer.finish(grammar2)
    assert str(result.grammar) == str(serial.grammar)
    assert result.representative == serial.representative
    # The wavefront's counted totals equal the serial loop's counter.
    assert stats.counted_queries == serial_counting.queries
    assert committer.done


def test_reversed_completion_order_discards_transitive_pairs():
    # Three mutually mergeable stars: the serial loop merges (0,1) and
    # (0,2), then skips (1,2) transitively. Reversed completion means
    # (1,2) was fully evaluated before its commit turn — it must be
    # discarded to the speculative bucket, not applied.
    grammar, stars = make_stars(["ab", "ab", "ab"])
    plan = plan_merges(stars)
    committer = MergeCommitter(plan)
    with ReorderingExecutor() as executor:
        stats = run_merge_wavefront(
            executor, plan, committer, lambda text: True
        )
    assert committer.decisions == [PAIR_MERGED, PAIR_MERGED, PAIR_SKIPPED]
    assert stats.speculative_queries > 0
    assert stats.pairs_discarded == 1

    # Counted totals still equal a serial run's.
    grammar2, stars2 = make_stars(["ab", "ab", "ab"])
    serial_counting = CountingOracle(CachingOracle(lambda text: True))
    serial = merge_repetitions(grammar2, stars2, serial_counting)
    assert stats.counted_queries == serial_counting.queries
    assert str(committer.finish(grammar).grammar) == str(serial.grammar)


class EagerInOrderExecutor(Executor):
    """Pulls (and runs) every payload up front, yields in plan order.

    Forces the complementary race to :class:`ReorderingExecutor`: a
    transitively skipped pair's speculative result arrives *after* the
    frontier already committed the skip.
    """

    name = "eager"
    jobs = 2

    def unordered_stream(self, fn, payloads, window=None):
        return iter([(i, fn(p)) for i, p in enumerate(payloads)])


def test_late_speculative_result_still_booked_as_discarded():
    # Pairs (0,1) and (0,2) merge first, so (1,2) commits as skipped
    # while its (already evaluated) outcome is still "in flight". The
    # late arrival must be booked to the speculative bucket through a
    # cost-only event, not silently dropped.
    grammar, stars = make_stars(["ab", "ab", "ab"])
    plan = plan_merges(stars)
    committer = MergeCommitter(plan)
    events = []
    with EagerInOrderExecutor() as executor:
        stats = run_merge_wavefront(
            executor, plan, committer, lambda text: True,
            on_commit=events.append,
        )
    assert committer.decisions == [PAIR_MERGED, PAIR_MERGED, PAIR_SKIPPED]
    assert stats.pairs_discarded == 1
    assert stats.speculative_queries == len(plan.pairs[2].checks)
    # Three commits plus one cost-only late event for the third pair.
    assert len(events) == 4
    late = events[-1]
    assert late.pair.index == 2
    assert late.decision == PAIR_SKIPPED
    assert late.discarded == len(plan.pairs[2].checks)
    assert late.queries == 0


def test_planner_table_dedupes_across_pairs():
    # With the serial executor the wavefront runs pairs one at a time,
    # so the invocation counts are deterministic: the shared verdict
    # table must strictly reduce base-oracle work versus naive
    # per-pair evaluation (duplicate check strings across pairs).
    def run(dedup):
        grammar, stars = make_stars(["ab", "cd", "ab", "cd"])
        plan = plan_merges(stars)
        committer = MergeCommitter(plan)
        oracle = CountingBase(lambda text: True)
        stats = run_merge_wavefront(
            SerialExecutor(), plan, committer, oracle, dedup=dedup
        )
        return stats, oracle.calls

    with_planner, calls_with = run(dedup=True)
    without, calls_without = run(dedup=False)
    assert calls_with < calls_without
    assert with_planner.invocations == calls_with
    assert with_planner.table_hits > 0
    # Dedup changes execution cost only — counted totals are identical.
    assert with_planner.counted_queries == without.counted_queries


def test_preseeded_table_skips_already_answered_strings():
    grammar, stars = make_stars(["ab", "cd"])
    plan = plan_merges(stars)
    # Seed the table with every check string, as the pipeline does from
    # the parent membership cache: zero oracle invocations remain.
    known = {check: True for pair in plan.pairs for check in pair.checks}
    committer = MergeCommitter(plan)
    oracle = CountingBase(lambda text: True)
    stats = run_merge_wavefront(
        SerialExecutor(), plan, committer, oracle, known=known
    )
    assert oracle.calls == 0
    assert stats.invocations == 0
    # Counted cost is unchanged: the serial loop would have paid every
    # check through its counter even on cache hits.
    assert stats.counted_queries > 0


def test_wavefront_resumes_mid_plan():
    # Replaying a committed prefix and running the wavefront over the
    # rest must land on the same decisions as one uninterrupted run.
    names = ["ab", "cd", "ab", "cd", "ef"]
    oracle_fn = lambda text: "e" not in text  # noqa: E731
    grammar, stars = make_stars(names)
    plan = plan_merges(stars)
    reference = MergeCommitter(plan)
    with ThreadExecutor(2) as executor:
        run_merge_wavefront(executor, plan, reference, CountingBase(oracle_fn))

    for cut in (1, 3, len(reference.decisions) - 1):
        grammar2, stars2 = make_stars(names)
        plan2 = plan_merges(stars2)
        resumed = MergeCommitter(plan2)
        resumed.replay(reference.decisions[:cut])
        with ThreadExecutor(2) as executor:
            stats = run_merge_wavefront(
                executor, plan2, resumed, CountingBase(oracle_fn)
            )
        assert resumed.decisions == reference.decisions, cut
        assert stats is not None
