"""Parallel determinism: any backend, any job count, same grammar.

The acceptance property of the execution subsystem: serial, thread and
process backends over 1–4 seeds yield identical serialized grammars,
identical per-seed query counts and states, and equal run-level query
totals — and a run interrupted mid-phase-1 resumes under ``--jobs 4``
to exactly the uninterrupted result. The oracle is the XML target's
(module-level, hence picklable for the process backend).
"""

import json

import pytest

from repro.artifacts import (
    MemoryCheckpointStore,
    SEED_LEARNED,
    SEED_SKIPPED,
    SEED_USED,
    SEED_VALIDATED,
    grammar_to_dict,
)
from repro.core.glade import GladeConfig
from repro.core.pipeline import LearningPipeline
from repro.targets import get_target


@pytest.fixture(scope="module")
def xml():
    return get_target("xml")


@pytest.fixture(scope="module")
def seeds(xml):
    return sorted(xml.sample_seeds(4, seed=0), key=len)


def learn(xml, seeds, jobs, backend, store=None):
    config = GladeConfig(alphabet=xml.alphabet, jobs=jobs, backend=backend)
    pipeline = LearningPipeline(xml.oracle, config=config, store=store)
    return pipeline.run(seeds)


@pytest.fixture(scope="module")
def serial_reference(xml, seeds):
    """Uninterrupted serial runs over 1 and 4 seeds."""
    return {n: learn(xml, seeds[:n], 1, "serial") for n in (1, 4)}


def serialized(artifact):
    return json.dumps(grammar_to_dict(artifact.grammar), sort_keys=True)


def assert_equivalent(actual, reference, resumed=False):
    assert serialized(actual) == serialized(reference)
    assert str(actual.grammar) == str(reference.grammar)
    # Per-seed query stats and lifecycle states merge identically.
    assert [s.queries for s in actual.seeds] == [
        s.queries for s in reference.seeds
    ]
    assert [s.state for s in actual.seeds] == [
        s.state for s in reference.seeds
    ]
    assert actual.oracle_queries == reference.oracle_queries
    if resumed:
        # The membership cache does not persist across restarts, so a
        # resumed run may count a string once per process that queried
        # it — an over-approximation, never an undercount.
        assert actual.unique_queries >= reference.unique_queries
    else:
        assert actual.unique_queries == reference.unique_queries


@pytest.mark.parametrize("n_seeds,backend,jobs", [
    (1, "thread", 4),
    (4, "thread", 2),
    (4, "thread", 4),
    (4, "process", 4),
], ids=["thread-1seed", "thread-j2", "thread-j4", "process-j4"])
def test_backends_match_serial(xml, seeds, serial_reference, n_seeds,
                               backend, jobs):
    reference = serial_reference[n_seeds]
    actual = learn(xml, seeds[:n_seeds], jobs, backend)
    assert actual.execution["backend"] == backend
    assert actual.execution["jobs"] == jobs
    assert_equivalent(actual, reference)


def test_interrupted_parallel_run_resumes_to_identical_result(
    xml, seeds, serial_reference
):
    """Mid-phase-1 crash under a parallel backend + ``resume`` at
    jobs=4 reproduces the uninterrupted (serial) run exactly."""
    store = MemoryCheckpointStore()
    full = learn(xml, seeds, 2, "thread", store=store)
    assert_equivalent(full, serial_reference[4])

    # A checkpoint that is genuinely mid-phase-1: some seeds done on a
    # worker (provisional "learned" state is allowed), some untouched.
    snapshot = None
    for index in range(len(store.snapshots)):
        candidate = store.snapshot(index)
        done = [
            s for s in candidate.seeds
            if s.state in (SEED_LEARNED, SEED_USED, SEED_SKIPPED)
        ]
        todo = [s for s in candidate.seeds if s.state == SEED_VALIDATED]
        if done and todo:
            snapshot = candidate
            break
    assert snapshot is not None, "no mid-phase-1 checkpoint recorded"

    snapshot.config.jobs = 4  # resume at a different worker count
    config = snapshot.config
    resumed = LearningPipeline(xml.oracle, config=config).resume(snapshot)
    assert_equivalent(resumed, serial_reference[4], resumed=True)
    assert resumed.status == "complete"


def ab_oracle(text):
    """Accepts any string over {a, b} (module-level: picklable)."""
    return set(text) <= set("ab")


def test_speculative_queries_reported_not_counted():
    """A parallel run learns covered seeds speculatively; the §6.1
    filter discards them and their cost moves to
    ``speculative_queries``, keeping counted metrics serial-equal."""
    oracle = ab_oracle
    config = GladeConfig(alphabet="ab", enable_chargen=False)
    serial = LearningPipeline(oracle, config=config).run(["ab", "abab"])
    assert serial.seeds[1].state == SEED_SKIPPED
    assert serial.speculative_queries == 0  # never learned at all

    parallel_config = GladeConfig(
        alphabet="ab", enable_chargen=False, jobs=2, backend="thread"
    )
    parallel = LearningPipeline(oracle, config=parallel_config).run(
        ["ab", "abab"]
    )
    assert parallel.seeds[1].state == SEED_SKIPPED
    assert parallel.seeds[1].queries == 0
    assert parallel.speculative_queries > 0
    assert parallel.oracle_queries == serial.oracle_queries
    assert parallel.unique_queries == serial.unique_queries
    assert str(parallel.grammar) == str(serial.grammar)


def test_phase2_progress_recorded_and_serial_equal(xml, seeds,
                                                   serial_reference):
    """Schema v3: the artifact records how phase 2 executed, and the
    committed decision log is identical at any job count."""
    reference = serial_reference[4]
    ref_progress = reference.phase2_progress
    assert ref_progress["backend"] == "serial"
    assert ref_progress["jobs"] == 1
    assert ref_progress["pairs"] == len(ref_progress["decisions"])
    assert "merged" in ref_progress["decisions"]  # xml actually merges

    actual = learn(xml, seeds, 4, "thread")
    progress = actual.phase2_progress
    assert progress["backend"] == "thread"
    assert progress["jobs"] == 4
    # The wavefront commits the same decisions in the same order.
    assert progress["decisions"] == ref_progress["decisions"]


def test_interrupted_phase2_resumes_at_other_job_count(
    xml, seeds, serial_reference
):
    """A checkpoint taken *mid-phase-2* under ``--jobs 4`` resumes at
    jobs=2 to the uninterrupted serial result: committed pairs are
    replayed (zero queries), only the rest is re-evaluated, and the
    accumulated counted totals equal the serial run's exactly."""
    store = MemoryCheckpointStore()
    full = learn(xml, seeds, 4, "thread", store=store)
    assert_equivalent(full, serial_reference[4])

    snapshot = None
    for index in range(len(store.snapshots)):
        candidate = store.snapshot(index)
        decisions = candidate.phase2_progress.get("decisions", [])
        total = candidate.phase2_progress.get("pairs", 0)
        if candidate.stage == "translate" and 0 < len(decisions) < total:
            snapshot = candidate
            break
    assert snapshot is not None, "no mid-phase-2 checkpoint recorded"

    snapshot.config.jobs = 2  # resume at a different worker count
    resumed = LearningPipeline(
        xml.oracle, config=snapshot.config
    ).resume(snapshot)
    assert_equivalent(resumed, serial_reference[4], resumed=True)
    assert resumed.status == "complete"
    assert (
        resumed.phase2_progress["decisions"]
        == serial_reference[4].phase2_progress["decisions"]
    )


def test_interrupted_serial_phase2_resumes_without_requerying(xml, seeds):
    """The serial path checkpoints per evaluated pair too: resuming a
    mid-phase-2 serial checkpoint re-issues no queries for committed
    pairs (the base-invocation count stays within the remainder)."""

    class CountingBase:
        def __init__(self, fn):
            self.fn = fn
            self.calls = 0

        def __call__(self, text):
            self.calls += 1
            return self.fn(text)

    store = MemoryCheckpointStore()
    config = GladeConfig(alphabet=xml.alphabet)
    full = LearningPipeline(
        xml.oracle, config=config, store=store
    ).run(seeds)

    snapshot = None
    for index in range(len(store.snapshots)):
        candidate = store.snapshot(index)
        decisions = candidate.phase2_progress.get("decisions", [])
        total = candidate.phase2_progress.get("pairs", 0)
        if candidate.stage == "translate" and 0 < len(decisions) < total:
            snapshot = candidate
    assert snapshot is not None, "no mid-phase-2 serial checkpoint"
    base_queries = snapshot.oracle_queries

    oracle = CountingBase(xml.oracle)
    resumed = LearningPipeline(oracle, config=config).resume(snapshot)
    assert str(resumed.grammar) == str(full.grammar)
    assert resumed.oracle_queries == full.oracle_queries
    # Only post-checkpoint pairs were evaluated.
    assert oracle.calls <= full.oracle_queries - base_queries
