"""Worker-crash recovery tests: pool rebuild, resubmission, abort."""

import os

import pytest

from concurrent.futures import BrokenExecutor

from repro.exec import ProcessExecutor, ThreadExecutor
from repro.learning.resilience import KILL_EXIT_CODE


def square(x):
    return x * x


def die_once(payload):
    """Kill this worker process the first time the marker is free.

    Mirrors :meth:`ChaosOracle._maybe_kill`: the first worker to create
    the one-shot marker file dies with :data:`KILL_EXIT_CODE`; the
    resubmitted task finds the marker and completes normally.
    """
    value, marker = payload
    if marker is not None:
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(KILL_EXIT_CODE)
    return value * value


def die_always(payload):
    os._exit(KILL_EXIT_CODE)


def explode(x):
    raise ValueError("boom on {}".format(x))


class TestProcessRecovery:
    def test_unordered_survives_one_worker_death(self, tmp_path):
        marker = str(tmp_path / "kill-once")
        payloads = [(i, marker if i == 2 else None) for i in range(6)]
        with ProcessExecutor(2) as executor:
            results = dict(executor.unordered(die_once, payloads))
        # Every task delivered its result at its original index — the
        # crash is invisible to the index-merging consumer.
        assert results == {i: i * i for i in range(6)}
        assert executor.pool_restarts == 1
        assert executor.tasks_resubmitted >= 1
        assert os.path.exists(marker)

    def test_unordered_stream_survives_one_worker_death(self, tmp_path):
        marker = str(tmp_path / "kill-once")
        payloads = ((i, marker if i == 1 else None) for i in range(5))
        with ProcessExecutor(2) as executor:
            results = dict(
                executor.unordered_stream(die_once, payloads, window=2)
            )
        assert results == {i: i * i for i in range(5)}
        assert executor.pool_restarts == 1

    def test_crash_loop_exhausts_restart_budget(self):
        with ProcessExecutor(2) as executor:
            with pytest.raises(BrokenExecutor):
                list(executor.unordered(die_always, [(i, None) for i in range(4)]))
        assert executor.pool_restarts == executor.max_pool_restarts

    def test_real_task_exception_still_propagates(self, tmp_path):
        # Exception-transparency survives recovery: a worker-raised
        # error is a genuine outcome, not a lost task.
        with ProcessExecutor(2) as executor:
            with pytest.raises(ValueError, match="boom on 7"):
                list(executor.unordered(explode, [7]))
        assert executor.pool_restarts == 0

    def test_recovery_counters_start_zero(self):
        with ProcessExecutor(2) as executor:
            assert dict(executor.unordered(square, [2, 3])) == {0: 4, 1: 9}
        assert executor.pool_restarts == 0
        assert executor.tasks_resubmitted == 0


class TestAbort:
    def test_abort_cancels_queued_tasks(self):
        executor = ThreadExecutor(1)
        # Submit more work than one worker can start; abort must return
        # without draining the queue.
        futures = [
            executor._pool.submit(square, i) for i in range(64)
        ]
        executor.abort()
        assert any(f.cancelled() for f in futures)

    def test_context_manager_aborts_on_exception(self):
        executor = ThreadExecutor(1)
        with pytest.raises(RuntimeError):
            with executor:
                raise RuntimeError("run failed")
        # The pool is shut down; new submissions are refused.
        with pytest.raises(RuntimeError):
            executor._pool.submit(square, 1)
