"""Tests for the four §8.2 target languages.

The key invariant: the sampling grammar and the recognizer describe the
same language (grammar samples must be accepted; negatives rejected).
"""

import random

import pytest

from repro.targets import TARGET_NAMES, all_targets, get_target


@pytest.fixture(scope="module", params=TARGET_NAMES)
def target(request):
    return get_target(request.param)


class TestRegistry:
    def test_four_targets(self):
        assert set(all_targets()) == {"url", "grep", "lisp", "xml"}

    def test_unknown_target_raises(self):
        with pytest.raises(ValueError):
            get_target("nope")


class TestGrammarOracleAgreement:
    def test_samples_accepted_by_oracle(self, target):
        sampler = target.sampler(random.Random(1))
        for _ in range(200):
            text = sampler.sample()
            assert target.oracle(text), (target.name, text)

    def test_seed_sampling_validates(self, target):
        seeds = target.sample_seeds(20, seed=3)
        assert len(seeds) == 20
        assert all(target.oracle(s) for s in seeds)

    def test_negative_samples_rejected(self, target):
        negatives = target.negative_samples(20, seed=5)
        assert len(negatives) == 20
        assert not any(target.oracle(n) for n in negatives)

    def test_alphabet_covers_grammar(self, target):
        assert target.grammar.alphabet() <= set(target.alphabet)


class TestURL:
    def test_examples(self):
        oracle = get_target("url").oracle
        assert oracle("http://ab.cd")
        assert oracle("https://www.example.com/path/to")
        assert oracle("http://my-host.org/x?q=1&r=2")
        assert oracle("https://a:b.io")  # host class admits ':'
        assert not oracle("ftp://ab.cd")
        assert not oracle("http://nodots")
        assert not oracle("http://a.bc")   # host needs >= 2 chars
        assert not oracle("http://ab.c")   # TLD needs 2-6 chars


class TestGrep:
    def test_examples(self):
        oracle = get_target("grep").oracle
        assert oracle("abc")
        assert oracle("a*b")
        assert oracle("\\(a\\|b\\)*c")
        assert oracle("[abc]x[^y]")
        # Unlike GNU grep, the §8.2 target requires non-empty branches
        # (the recognizer and the sampling grammar agree on this).
        assert not oracle("")
        assert not oracle("\\(a")
        assert not oracle("a\\)")
        assert not oracle("[")
        assert not oracle("[]")


class TestLisp:
    def test_examples(self):
        oracle = get_target("lisp").oracle
        assert oracle("(add 1 2)")
        assert oracle("(f (g x) 'y)")
        assert oracle('(say "hi there")')
        assert oracle("(f ;note\n x)")
        assert not oracle("()")
        assert not oracle("(f")
        assert not oracle("atom")
        assert not oracle("(f )")


class TestXML:
    def test_examples(self):
        oracle = get_target("xml").oracle
        assert oracle("<a></a>")
        assert oracle('<a x="1"><b/></a>')
        assert oracle("<a><!--note-->text</a>")
        assert oracle("<b><![CDATA[<raw>]]></b>")
        assert oracle("<a><?go now?></a>")
        assert not oracle("<a></b>")
        assert not oracle("<a>")
        assert not oracle("<c></c>")  # only tags a and b exist
