"""Cross-cutting tests every §8.3 subject must satisfy."""

import random

import pytest

from hypothesis import given, settings, strategies as st

from repro.programs import SUBJECT_NAMES, all_subjects, get_subject


@pytest.fixture(scope="module", params=SUBJECT_NAMES)
def subject(request):
    return get_subject(request.param)


class TestRegistry:
    def test_eight_subjects(self):
        assert len(all_subjects()) == 8

    def test_unknown_subject_raises(self):
        with pytest.raises(ValueError):
            get_subject("perl")


class TestContract:
    def test_all_seeds_accepted(self, subject):
        for seed in subject.seeds:
            assert subject.accepts(seed), (subject.name, seed)

    def test_loc_and_seed_lines_positive(self, subject):
        assert subject.loc() > 100
        assert subject.seed_line_count() >= len(subject.seeds)

    def test_rejects_garbage_without_crashing(self, subject):
        rng = random.Random(99)
        rejected = 0
        for _ in range(200):
            length = rng.randint(0, 40)
            text = "".join(
                rng.choice(subject.alphabet) for _ in range(length)
            )
            if not subject.accepts(text):
                rejected += 1
        assert rejected > 0  # random junk is mostly invalid

    def test_handles_off_alphabet_bytes(self, subject):
        for probe in ["\x00", "é", "\x7f", "\t\t", "🦊"]:
            subject.accepts(probe)  # must not raise

    def test_seed_alphabet_subset(self, subject):
        for seed in subject.seeds:
            assert set(seed) <= set(subject.alphabet), subject.name


@given(data=st.data())
@settings(max_examples=80, deadline=None)
def test_no_subject_ever_raises(data):
    """Total robustness: accepts() is a predicate, never an exception."""
    subjects = all_subjects()
    name = data.draw(st.sampled_from(sorted(subjects)))
    subject = subjects[name]
    text = data.draw(st.text(max_size=60))
    verdict = subject.accepts(text)
    assert isinstance(verdict, bool)
