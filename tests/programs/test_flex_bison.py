"""Tests for the flex and bison subjects."""

import pytest

from repro.programs import bison_prog, flex_prog
from repro.programs.bison_prog import _BisonParser
from repro.programs.bison_prog import _analyze as bison_analyze
from repro.programs.flex_prog import _FlexParser
from repro.programs.flex_prog import _analyze as flex_analyze


class TestFlexValid:
    @pytest.mark.parametrize(
        "spec",
        [
            "%%\n",
            "%%\na ECHO;\n",
            "D [0-9]\n%%\n{D}+ return NUM;\n",
            "%option caseless yylineno\n%%\nx |\ny ECHO;\n",
            "%{\nint lines = 0;\n%}\n%%\n\\n { lines++; }\n",
            "%%\n[a-z]+ {\n  multi();\n  line();\n}\n",
            '%%\n"quoted string" ECHO;\n',
            "%%\nab/cd ECHO;\n",
            "%%\n^anchor$ ECHO;\n",
            "%%\na{2,4} ECHO;\n",
            "%s STATE1 STATE2\n%%\nx ECHO;\n",
            "%%\nx ECHO;\n%%\nany user code )((\n",
        ],
    )
    def test_valid(self, spec):
        assert flex_prog.accepts(spec), spec

    @pytest.mark.parametrize(
        "spec",
        [
            "no separator at all\n",
            "1BAD [0-9]\n%%\n",            # name starts with digit
            "D\n%%\n",                      # definition without pattern
            "%%\n{UNDEF}+ ECHO;\n",         # undefined name
            "%%\n[a-z ECHO;\n",             # unterminated class
            "%%\nx { unbalanced;\n",        # unterminated action
            "%%\npattern_without_action",   # no action column
            "%{\nnever closed\n%%\n",       # unterminated block
            "%s\n%%\nx ECHO;\n",            # empty state list
            "%%\na{2,1} ECHO;\n",           # bad repeat bounds
        ],
    )
    def test_invalid(self, spec):
        assert not flex_prog.accepts(spec), spec

    def test_analysis_statistics(self):
        parser = _FlexParser(
            "D [0-9]\n%%\n{D}+ n();\n^x$ a();\nab/c t();\n{D}+ n();\n"
        )
        parser.parse()
        stats = flex_analyze(parser)
        assert stats["rules"] == 4
        assert stats["anchored"] == 1
        assert stats["trailing_context"] == 1
        assert stats["duplicates"] == 1
        assert stats["uses_definitions"] == 2


class TestBisonValid:
    @pytest.mark.parametrize(
        "grammar",
        [
            "%%\ns : ;\n",
            "%token A\n%%\ns : A ;\n",
            "%%\ns : s 'x' | ;\n",
            "%token A B\n%left '+'\n%right '*'\n%%\ne : e '+' e | A ;\n",
            "%start top\n%%\ntop : 'a' ;\n",
            "%union { int i; }\n%token <i> NUM\n%%\ns : NUM ;\n",
            "%%\ns : 'a' { act(); } 'b' { more(); } ;\n",
            "%%\ns : a %prec HIGH ;\na : 'x' ;\n",
            "%{\n#include <stdio.h>\n%}\n%%\ns : ;\n",
            "%%\ns : \"str\" ;\n",
            "/* comment */\n%%\ns : ; // trailing\n",
            "%%\ns : ;\n%%\nepilogue text\n",
            "%expect 2\n%%\ns : ;\n",
        ],
    )
    def test_valid(self, grammar):
        assert bison_prog.accepts(grammar), grammar

    @pytest.mark.parametrize(
        "grammar",
        [
            "",                              # no separator
            "%%\n",                          # no rules at all
            "%%\ns 'x' ;\n",                 # missing colon
            "%%\ns : 'x'\n",                 # missing semicolon
            "%token\n%%\ns : ;\n",           # empty token list
            "%start missing\n%%\ns : ;\n",   # %start names unknown rule
            "%nonsense\n%%\ns : ;\n",        # unknown declaration
            "%%\ns : { unclosed ;\n",        # unterminated action
            "%union missing\n%%\ns : ;\n",   # %union without braces
            "%%\n: 'x' ;\n",                 # rule without name
            "%%\ns : 'unclosed ;\n",         # unterminated literal
            "%expect many\n%%\ns : ;\n",     # non-numeric %expect
        ],
    )
    def test_invalid(self, grammar):
        assert not bison_prog.accepts(grammar), grammar

    def test_analysis_statistics(self):
        parser = _BisonParser(
            "%token A\n%left '+'\n%%\n"
            "s : e ;\ne : e '+' A | A ;\norphan : 'z' ;\n"
        )
        parser.parse()
        stats = bison_analyze(parser)
        assert stats["rules"] == 4
        assert stats["nonterminals"] == 3
        assert "orphan" in stats["unreachable"]
        assert stats["precedence_levels"] == 1

    def test_nullable_analysis(self):
        parser = _BisonParser("%%\ns : a b ;\na : ;\nb : ;\n")
        parser.parse()
        stats = bison_analyze(parser)
        assert set(stats["nullable"]) == {"a", "b", "s"}
