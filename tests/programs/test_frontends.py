"""Tests for the python, ruby, and javascript front-end subjects."""

import pytest

from repro.programs import js_prog, python_prog, ruby_prog


class TestPythonFrontend:
    @pytest.mark.parametrize(
        "code",
        [
            "x = 1\n",
            "if a:\n    b = 1\nelif c:\n    b = 2\nelse:\n    b = 3\n",
            "def f(a, b=2, *args, **kw):\n    return a\n",
            "class C(Base):\n    def m(self):\n        pass\n",
            "xs = [i for i in range(3) if i]\n",
            "d = {'k': v}\n",
            "while x:\n    break\n",
            "lambda_test = lambda x: x + 1\n",
            "a = b[1:2]\n",
            "s = 'a' \"b\"\n",
            "x = (1 +\n     2)\n",
            "import a.b.c\nfrom x.y import z\n",
            "del x\nglobal g\nassert x == 1\n",
            "# only a comment\n",
            "",
            "x = 1; y = 2\n",
            "if x: y = 1\n",
        ],
    )
    def test_valid(self, code):
        assert python_prog.accepts(code), repr(code)

    @pytest.mark.parametrize(
        "code",
        [
            "def f(:\n    pass\n",
            "if x\n    pass\n",          # missing colon
            "x = \n",
            "return 1\n)",
            "x = (1\n",                   # unclosed paren
            "  x = 1\n",                  # unexpected indent
            "def f():\npass\n",           # missing indent
            "x = 'unterminated\n",
            "1x = 2\n",                   # bad number
            "def f(a, a=, b):\n    pass\n",
            "class :\n    pass\n",
            "x = ]\n",
            "for in y:\n    pass\n",
            "x == \n",
        ],
    )
    def test_invalid(self, code):
        assert not python_prog.accepts(code), repr(code)

    def test_indentation_tracking(self):
        nested = (
            "if a:\n"
            "    if b:\n"
            "        x = 1\n"
            "    y = 2\n"
            "z = 3\n"
        )
        assert python_prog.accepts(nested)
        bad_dedent = "if a:\n        x = 1\n    y = 2\n"
        assert not python_prog.accepts(bad_dedent)

    def test_profile_counts_constructs(self):
        tokens = python_prog._Tokenizer(
            "def f():\n    return [1, 2.5]\n"
        ).tokenize()
        stats = python_prog._profile(tokens)
        assert stats["functions"] == 1
        assert stats["returns"] == 1
        assert stats["ints"] == 1
        assert stats["floats"] == 1
        assert stats["max_indent"] == 1


class TestRubyFrontend:
    @pytest.mark.parametrize(
        "code",
        [
            "x = 1\n",
            "def m(a, b = 1, *rest, &blk)\n  a\nend\n",
            "def self.build\n  new\nend\n",
            "class Foo < Bar\n  def m\n    1\n  end\nend\n",
            "module M\n  def h\n    2\n  end\nend\n",
            "xs.each do |x, y|\n  puts x\nend\n",
            "xs.map { |x| x * 2 }\n",
            "if a then b end\n",
            "puts 'x' if ready\n",
            "case x\nwhen 1, 2 then a\nelse b\nend\n",
            "begin\n  w\nrescue E => e\n  f\nensure\n  g\nend\n",
            "h = {:a => 1, k: 2}\n",
            "s = \"one #{two} three\"\n",
            "x ||= 1\ny &&= 2\n",
            "A::B::C\n",
            "r = 1..9\n",
            "yield(1)\n",
        ],
    )
    def test_valid(self, code):
        assert ruby_prog.accepts(code), repr(code)

    @pytest.mark.parametrize(
        "code",
        [
            "def m\n  x\n",                # missing end
            "end\n",
            "class lower\nend\n",          # class name not constant
            "if\nend\n",
            "case x\nend\n",               # case without when
            "xs.each do |x\nend\n",        # unterminated block params
            "s = \"unterminated\n",
            "s = \"bad #{interp\"\n",
            "def m(a,)\n  a\nend\n",       # trailing comma
            "x = {1 =>}\n",
            "@ = 1\n",
        ],
    )
    def test_invalid(self, code):
        assert not ruby_prog.accepts(code), repr(code)

    def test_profile_counts_constructs(self):
        tokens = ruby_prog._Tokenizer(
            "def m\n  @x = :sym\n  yield\nend\n"
        ).tokenize()
        stats = ruby_prog._profile(tokens)
        assert stats["methods"] == 1
        assert stats["symbols"] == 1
        assert stats["instance_vars"] == 1
        assert stats["yields"] == 1


class TestJavascriptFrontend:
    @pytest.mark.parametrize(
        "code",
        [
            "var x = 1;",
            "let a = [1, 2]; const b = { k: 'v' };",
            "function f(a, b) { return a + b; }",
            "var g = function () { return 0; };",
            "if (a) { b(); } else if (c) { d(); }",
            "for (var i = 0; i < 9; i++) { s += i; }",
            "for (var k in obj) { f(k); }",
            "for (var v of xs) { g(v); }",
            "do { x--; } while (x);",
            "try { a(); } catch (e) { b(); } finally { c(); }",
            "switch (x) { case 1: a(); break; default: b(); }",
            "throw new Error('x');",
            "x = a ? b : c;",
            "y = a === b && c !== d;",
            "z = ~a | b & c ^ d << 2 >>> 1;",
            "obj.method(1)['key'].deep;",
            "x = typeof a; delete obj.k; void 0;",
            "/* comment */ x = 1; // end",
            "",
            ";",
        ],
    )
    def test_valid(self, code):
        assert js_prog.accepts(code), repr(code)

    @pytest.mark.parametrize(
        "code",
        [
            "var x = 1",                 # missing semicolon (no ASI)
            "x = ;",
            "function () { return; }",   # declaration needs a name
            "if a { b(); }",             # missing parens
            "for (;;) { break }",        # missing ; after break
            "try { a(); }",              # try without catch/finally
            "switch (x) { default: a(); default: b(); }",
            "x = 'unterminated;",
            "var 1x = 2;",
            "obj = { k 1 };",
            "x = (1;",
            "while (true) { /* unclosed",
        ],
    )
    def test_invalid(self, code):
        assert not js_prog.accepts(code), repr(code)

    def test_profile_counts_constructs(self):
        tokens = js_prog._Tokenizer(
            "function f() { return x === 1 ? 2.5 : 3; }"
        ).tokenize()
        stats = js_prog._profile(tokens)
        assert stats["functions"] == 1
        assert stats["equality_tests"] == 1
        assert stats["ternaries"] == 1
        assert stats["floats"] == 1
        assert stats["max_brace_depth"] == 1
