"""Tests for the grep subject: BRE compilation and matching."""

import pytest

from repro.programs.grep_prog import _Compiler, _search, accepts


class TestCompilation:
    @pytest.mark.parametrize(
        "pattern",
        [
            "", "abc", "a*", "a**", ".", ".*", "^abc$", "a$b",
            "[abc]", "[^abc]", "[a-z0-9]", "[]a]", "[[:digit:]]",
            "\\(a\\)", "\\(a\\|b\\)", "\\(\\(x\\)\\)", "\\(a\\)\\1",
            "a\\{2\\}", "a\\{2,\\}", "a\\{2,5\\}", "\\.", "\\*", "\\\\",
            "\\<word\\>", "\\bw\\B", "*leading", "a\\|", "\\|a",
        ],
    )
    def test_valid_patterns(self, pattern):
        assert accepts(pattern), pattern

    @pytest.mark.parametrize(
        "pattern",
        [
            "\\(a", "a\\)", "[", "[]", "[[:nope:]]", "[[:digit:]",
            "a\\{2", "a\\{5,2\\}", "a\\{999\\}", "\\1", "\\(a\\)\\2",
            "\\q", "a\\", "[z-a]", "has\nnewline",
        ],
    )
    def test_invalid_patterns(self, pattern):
        assert not accepts(pattern), pattern


class TestMatching:
    def match(self, pattern, text):
        return _search(_Compiler(pattern).compile(), text)

    def test_substring_semantics(self):
        assert self.match("world", "hello world")
        assert not self.match("planet", "hello world")

    def test_star(self):
        assert self.match("ab*c", "ac")
        assert self.match("ab*c", "abbbc")

    def test_interval(self):
        assert self.match("ab\\{2,3\\}c", "xabbcx")
        assert self.match("ab\\{2,3\\}c", "abbbc")
        assert not self.match("ab\\{2,3\\}c", "abc")
        assert not self.match("^ab\\{2,3\\}c$", "abbbbc")

    def test_alternation(self):
        assert self.match("\\(cat\\|dog\\)", "hotdog stand")
        assert not self.match("^\\(cat\\|dog\\)$", "cow")

    def test_group_backtracking(self):
        # Needs the second alternative of the group.
        assert self.match("\\(a\\|ab\\)c", "zabc")

    def test_backreference(self):
        assert self.match("\\(ab\\)\\1", "xxababxx")
        assert not self.match("^\\(ab\\)\\1$", "abba")

    def test_anchors(self):
        assert self.match("^hello", "hello world")
        assert not self.match("^world", "hello world")
        assert self.match("world$", "hello world")

    def test_bracket_negation(self):
        assert self.match("[^0-9]", "abc")
        assert not self.match("^[^a-z]*$", "abc")

    def test_posix_class(self):
        assert self.match("[[:digit:]][[:alpha:]]", "4x")

    def test_word_boundaries(self):
        assert self.match("\\<hello", "say hello")
        assert self.match("\\bworld\\b", "the world is")

    def test_step_budget_terminates(self):
        # Nested stars with backtracking pressure must not hang.
        assert accepts("\\(a*\\)*b")
