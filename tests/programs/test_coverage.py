"""Tests for the coverage tracer and the §8.3 coverage metrics."""

import pytest

from repro.programs import get_subject
from repro.programs.coverage import (
    CoverageReport,
    CoverageTracer,
    coverable_lines,
    loc_of_module,
    measure_coverage,
)


class TestTracer:
    def test_lines_recorded_for_subject_module(self):
        subject = get_subject("sed")
        tracer = CoverageTracer(subject.modules)
        tracer.run(subject.accepts, "p")
        filename = subject.modules[0].__file__
        assert any(f == filename for f, _ in tracer.lines)

    def test_different_inputs_cover_different_lines(self):
        subject = get_subject("sed")
        tracer = CoverageTracer(subject.modules)
        tracer.run(subject.accepts, "s/a/b/")
        substitute_lines = set(tracer.lines)
        tracer.reset()
        tracer.run(subject.accepts, "y/ab/cd/")
        transliterate_lines = set(tracer.lines)
        assert substitute_lines != transliterate_lines

    def test_edges_recorded(self):
        subject = get_subject("grep")
        tracer = CoverageTracer(subject.modules)
        tracer.run(subject.accepts, "a*b")
        assert tracer.edges

    def test_non_subject_code_not_traced(self):
        subject = get_subject("xml")
        tracer = CoverageTracer(subject.modules)
        tracer.run(lambda text: len(text), "hello")
        assert not tracer.lines

    def test_return_value_passed_through(self):
        subject = get_subject("xml")
        tracer = CoverageTracer(subject.modules)
        assert tracer.run(subject.accepts, "<r/>") is True
        assert tracer.run(subject.accepts, "<r") is False


class TestCoverableLines:
    def test_subset_relationship(self):
        subject = get_subject("bison")
        coverable = coverable_lines(subject.modules[0])
        tracer = CoverageTracer(subject.modules)
        tracer.run(subject.accepts, subject.seeds[0])
        # Executed lines of the module are coverable lines (module-level
        # statements already ran at import, so compare parser runs only).
        assert tracer.lines <= coverable | set()

    def test_loc_counts_code_lines(self):
        subject = get_subject("sed")
        assert loc_of_module(subject.modules[0]) > 100


class TestCoverageReport:
    def _report(self, coverable, seeds, covered):
        to_lines = lambda xs: {("f", x) for x in xs}
        return CoverageReport(
            to_lines(coverable), to_lines(seeds), to_lines(covered)
        )

    def test_valid_coverage(self):
        report = self._report(range(10), [0, 1], [0, 1, 2, 3])
        assert report.valid_coverage() == 0.4

    def test_incremental_ignores_seed_lines(self):
        report = self._report(range(10), [0, 1], [0, 1, 2, 3])
        # 2 new lines out of 8 non-seed coverable lines.
        assert report.valid_incremental_coverage() == 0.25

    def test_normalization(self):
        baseline = self._report(range(10), [0], [0, 1])
        better = self._report(range(10), [0], [0, 1, 2, 3])
        assert better.normalized_against(baseline) == pytest.approx(3.0)

    def test_normalization_zero_baseline(self):
        baseline = self._report(range(10), [0], [0])
        some = self._report(range(10), [0], [0, 1])
        assert some.normalized_against(baseline) == float("inf")
        none = self._report(range(10), [0], [0])
        assert none.normalized_against(baseline) == 1.0


class TestMeasureCoverage:
    def test_valid_only_excludes_invalid_runs(self):
        subject = get_subject("xml")
        valid_cov = measure_coverage(subject, ["<r/>"], valid_only=True)
        mixed_cov = measure_coverage(
            subject, ["<r/>", "<<<broken"], valid_only=True
        )
        # The invalid input contributes nothing under valid-only.
        assert valid_cov == mixed_cov

    def test_invalid_runs_counted_when_asked(self):
        subject = get_subject("xml")
        strict = measure_coverage(subject, ["<<<broken"], valid_only=True)
        loose = measure_coverage(subject, ["<<<broken"], valid_only=False)
        assert strict == set()
        assert loose
