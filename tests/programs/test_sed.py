"""Tests for the sed subject: script parsing and the execution engine."""

import pytest

from repro.programs import sed_prog
from repro.programs.sed_prog import _Engine, _Parser, _bre_search, accepts


class TestParsing:
    @pytest.mark.parametrize(
        "script",
        [
            "",
            "p",
            "s/a/b/",
            "s/a/b/g",
            "s|a|b|gp",
            "s/a/b/2",
            "1d",
            "$p",
            "2,5d",
            "/pat/d",
            "/pat/,/end/p",
            "3!p",
            "0~2d",
            "{p;d}",
            "1,3{s/x/y/;p}",
            "y/ab/cd/",
            "a hello",
            "a\\\nhello",
            "i text",
            ":top\nb top",
            "t done\n:done",
            "s/[abc]/x/",
            "s/a\\/b/c/",
            "=\nl\nn\nN\nG\nh\nH\nx\ng\nq",
        ],
    )
    def test_valid_scripts(self, script):
        assert accepts(script), script

    @pytest.mark.parametrize(
        "script",
        [
            "s/a/b",          # unterminated replacement
            "s/a",            # unterminated regex
            "y/ab/c/",        # unequal lengths
            "z",              # unknown command
            "{p",             # unterminated block
            "}",              # unmatched brace
            "1,",             # missing second address
            "2p extra",       # trailing junk
            ":",              # label required
            "s/a/b/gg",       # duplicate flag
            "s//a/\\",        # dangling content
            "!p!",            # double negation junk
        ],
    )
    def test_invalid_scripts(self, script):
        assert not accepts(script), script

    def test_address_structures(self):
        commands = _Parser("2,/x/!p").parse_script()
        command = commands[0]
        assert command["neg"]
        assert command["addr"][0] == ("line", 2)
        assert command["addr"][1] == ("regex", "x")


class TestBREMatcher:
    def test_literal(self):
        assert _bre_search("world", "hello world") == (6, 11)

    def test_star_and_dot(self):
        assert _bre_search("l*o", "hello") is not None
        assert _bre_search("h.llo", "hello") == (0, 5)

    def test_bracket(self):
        assert _bre_search("[aeiou]", "xyz") is None
        assert _bre_search("[a-f]", "zzd") == (2, 3)
        assert _bre_search("[^a-f]", "ad z")[0] == 2

    def test_anchors(self):
        assert _bre_search("^he", "hello") == (0, 2)
        assert _bre_search("^el", "hello") is None
        assert _bre_search("lo$", "hello") == (3, 5)

    def test_escape(self):
        assert _bre_search("a\\.b", "a.b") == (0, 3)
        assert _bre_search("a\\.b", "axb") is None


class TestEngine:
    def run(self, script):
        return _Engine(_Parser(script).parse_script()).run()

    def test_delete_all(self):
        assert self.run("d") == ""

    def test_substitute_global(self):
        out = self.run("s/o/0/g")
        assert "0" in out and "o" not in out

    def test_line_address(self):
        out = self.run("2d").splitlines()
        assert len(out) == len(sed_prog._SAMPLE_LINES) - 1

    def test_negated_address(self):
        out = self.run("$!d")
        assert out == sed_prog._SAMPLE_LINES[-1]

    def test_print_duplicates(self):
        out = self.run("1p").splitlines()
        assert out[0] == out[1] == sed_prog._SAMPLE_LINES[0]

    def test_quit(self):
        out = self.run("1q").splitlines()
        assert out == [sed_prog._SAMPLE_LINES[0]]

    def test_transliterate(self):
        out = self.run("y/lo/LO/")
        assert "heLLO" in out

    def test_hold_space_roundtrip(self):
        out = self.run("1h;2G")
        lines = out.splitlines()
        assert lines[2] == sed_prog._SAMPLE_LINES[0]

    def test_branch_loop_is_budgeted(self):
        # An infinite loop via b must terminate through the cycle budget.
        assert accepts(":x\nb x")

    def test_append_text(self):
        out = self.run("1a EXTRA")
        assert "EXTRA" in out
