"""Tests for the XML subject: well-formedness, DOM, serialization."""

import pytest

from repro.programs.xml_prog import (
    _XMLParser,
    _analyze,
    _serialize,
    accepts,
)


class TestWellFormedness:
    @pytest.mark.parametrize(
        "doc",
        [
            "<r/>",
            "<r></r>",
            "<r>text</r>",
            "<root><child/><child/></root>",
            '<r a="1" b="2"/>',
            "<r a='single'/>",
            "<r>&amp;&lt;&gt;&apos;&quot;</r>",
            "<r>&#65;&#x41;</r>",
            "<r><!-- comment --></r>",
            "<r><![CDATA[ raw <junk> here ]]></r>",
            "<r><?pi data?></r>",
            '<?xml version="1.0"?><r/>',
            "<r>\n  <nested>\n    deep\n  </nested>\n</r>",
            "<a.b-c:d/>",
        ],
    )
    def test_valid(self, doc):
        assert accepts(doc), doc

    @pytest.mark.parametrize(
        "doc",
        [
            "",
            "plain text",
            "<r>",
            "<r></x>",
            "<r><a></r></a>",          # improper nesting
            '<r a="1" a="2"/>',        # §8.3: duplicate attribute
            "<r a=1/>",                # unquoted value
            "<r>&unknown;</r>",
            "<r>&#;</r>",
            "<r><!-- -- --></r>",      # double hyphen in comment
            "<r>un<escaped</r>",
            "<r/>trailing",
            "<r><![CDATA[never closed</r>",
            "<1bad/>",
        ],
    )
    def test_invalid(self, doc):
        assert not accepts(doc), doc


class TestDOM:
    def parse(self, doc):
        return _XMLParser(doc).parse_document()

    def test_structure(self):
        dom = self.parse('<r a="v"><c>hi</c></r>')
        kind, name, attributes, children = dom
        assert (kind, name) == ("elem", "r")
        assert attributes == [("a", "v")]
        assert children[0][1] == "c"

    def test_entity_decoding(self):
        dom = self.parse("<r>&amp;&#65;</r>")
        assert dom[3] == [("text", "&A")]

    def test_analysis(self):
        dom = self.parse(
            '<r a="1"><b c="2"><!--x--></b><![CDATA[y]]><?p z?></r>'
        )
        stats = _analyze(dom)
        assert stats["elements"] == 2
        assert stats["attributes"] == 2
        assert stats["comments"] == 1
        assert stats["cdata"] == 1
        assert stats["pis"] == 1
        assert stats["max_depth"] == 2

    def test_serialization_roundtrip(self):
        doc = '<r a="v"><c>hi</c><!--note--><d/></r>'
        dom = self.parse(doc)
        rendered = _serialize(dom)
        # Serialization output is itself well-formed and parses to the
        # same structure.
        assert accepts(rendered)
        assert self.parse(rendered) == dom

    def test_serialization_escapes_text(self):
        dom = self.parse("<r>&amp;</r>")
        assert "&amp;" in _serialize(dom)
