"""Smoke tests for every figure harness, at tiny scale.

These are the integration tests that keep the benchmark entry points
honest: each harness must run end-to-end and report the paper's shape
(GLADE ≥ baselines where the paper says so).
"""

import pytest

from repro.evaluation.fig4 import (
    format_fig4ab,
    format_fig4c,
    run_cell,
    run_fig4c,
)
from repro.evaluation.fig5 import format_fig5, run_fig5
from repro.evaluation.fig6 import format_fig6, run_fig6
from repro.evaluation.fig7 import (
    SubjectHarness,
    format_fig7,
    format_fig7c,
    run_fig7a,
    run_fig7c,
)
from repro.evaluation.fig8 import format_fig8, run_fig8


class TestFig4:
    def test_glade_cell_on_url(self):
        cell = run_cell(
            "url", "glade", n_seeds=6, time_limit=60, eval_samples=60
        )
        # The paper reports F1 near 1.0; our reproduction lands lower on
        # URL because phase one degenerates to per-character stars on
        # unstructured host blobs (documented in EXPERIMENTS.md). Recall
        # stays near-perfect; precision carries the gap.
        assert cell.recall > 0.9
        assert cell.f1 > 0.45

    def test_rpni_cell_runs(self):
        cell = run_cell(
            "url", "rpni", n_seeds=4, time_limit=15, eval_samples=40
        )
        assert 0.0 <= cell.f1 <= 1.0

    def test_lstar_cell_runs(self):
        cell = run_cell(
            "url", "lstar", n_seeds=4, time_limit=15, eval_samples=40
        )
        assert 0.0 <= cell.f1 <= 1.0

    def test_fig4c_series(self):
        data = run_fig4c(
            seed_counts=(2, 4), eval_samples=40, time_limit=60
        )
        assert len(data["precision"]) == 2
        rendered = format_fig4c(data)
        assert "precision" in rendered

    def test_format(self):
        cell = run_cell(
            "url", "glade", n_seeds=3, time_limit=30, eval_samples=30
        )
        rendered = format_fig4ab([cell])
        assert "url" in rendered and "glade" in rendered


class TestFig5:
    def test_rows_and_format(self):
        rows = run_fig5()
        assert [r.name for r in rows] == ["URL", "Grep", "Lisp", "XML"]
        rendered = format_fig5(rows)
        assert "synthesized grammar" in rendered
        # The XML example must have learned a recursive (merged) grammar.
        xml_row = rows[-1]
        assert xml_row.result.phase2_result.merged_pairs()


class TestFig6:
    def test_subset_run(self):
        rows = run_fig6(subjects=["sed", "grep"])
        assert len(rows) == 2
        assert all(r.synthesis_seconds >= 0 for r in rows)
        assert all(r.loc > 100 for r in rows)
        rendered = format_fig6(rows)
        assert "sed" in rendered


class TestFig7:
    def test_harness_generates_all_fuzzers(self):
        harness = SubjectHarness("xml", seed=1)
        for fuzzer in ["naive", "afl", "glade"]:
            samples = harness.generate(fuzzer, 40)
            assert len(samples) == 40

    @pytest.mark.slow
    def test_fig7a_subset(self):
        rows = run_fig7a(subjects=["xml"], n_samples=120)
        by_fuzzer = {r.fuzzer: r for r in rows}
        assert by_fuzzer["naive"].normalized == pytest.approx(1.0)
        # GLADE's validity rate must dominate the naive fuzzer's (the
        # coverage ordering needs larger sample counts to stabilize).
        assert (
            by_fuzzer["glade"].valid_fraction
            > by_fuzzer["naive"].valid_fraction
        )
        rendered = format_fig7(rows, "t")
        assert "glade" in rendered

    @pytest.mark.slow
    def test_fig7c_series(self):
        series = run_fig7c(
            subject_name="xml", checkpoints=(40, 80)
        )
        assert len(series["glade"]) == 2
        assert format_fig7c(series)


class TestFig8:
    @pytest.mark.slow
    def test_sample_is_valid_xml(self):
        result = run_fig8(n_candidates=150)
        assert result.valid
        assert result.sample
        rendered = format_fig8(result)
        assert "Figure 8" in rendered
