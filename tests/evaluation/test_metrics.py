"""Tests for precision/recall/F1 estimation (Definition 2.1)."""

import random

import pytest

from repro.automata.determinize import regex_to_dfa
from repro.evaluation.metrics import (
    DFAView,
    EvalScores,
    GrammarView,
    estimate_precision,
    estimate_recall,
    evaluate_language,
)
from repro.languages import regex as rx
from repro.languages.cfg import Grammar, Nonterminal, Production
from repro.targets import get_target

S = Nonterminal("S")


def test_f1_formula():
    scores = EvalScores(precision=0.5, recall=1.0)
    assert scores.f1 == pytest.approx(2 / 3)
    assert EvalScores(0.0, 0.0).f1 == 0.0


def test_perfect_learner_scores_one():
    target = get_target("url")
    learned = GrammarView(target.grammar)
    scores = evaluate_language(learned, target, n_samples=150)
    assert scores.precision == 1.0
    assert scores.recall == 1.0


def test_overgeneral_learner_low_precision():
    target = get_target("url")
    sigma_star = Grammar(
        S,
        [Production(S, ())]
        + [
            Production(S, (c, S))
            for c in sorted(set(target.alphabet))
        ],
    )
    learned = GrammarView(sigma_star)
    precision = estimate_precision(
        learned, target.oracle, n_samples=150
    )
    recall = estimate_recall(
        learned, target.sampler(random.Random(0)).sample, n_samples=150
    )
    assert precision < 0.2  # Σ* is almost never a valid URL
    assert recall == 1.0


def test_undergeneral_learner_low_recall():
    target = get_target("url")
    single = Grammar(S, [Production(S, ("http://ab.cd",))])
    learned = GrammarView(single)
    scores = evaluate_language(learned, target, n_samples=150)
    assert scores.precision == 1.0
    assert scores.recall < 0.2


def test_dfa_view():
    dfa = regex_to_dfa(rx.star(rx.Lit("ab")), "ab")
    view = DFAView(dfa)
    assert view.contains("abab")
    assert not view.contains("aba")
    sample = view.sample(random.Random(0))
    assert sample is not None
    assert view.contains(sample)


def test_empty_dfa_view_precision_zero():
    dfa = regex_to_dfa(rx.EMPTY, "ab")
    view = DFAView(dfa)
    assert view.sample(random.Random(0)) is None
    assert estimate_precision(view, lambda s: True, n_samples=10) == 0.0
