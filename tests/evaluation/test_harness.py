"""The unified evaluation harness: learn-once caching, suite
determinism across job counts, and the regression comparator."""

import copy

import pytest

from repro.artifacts.suite import (
    SubjectMetrics,
    SubjectPerf,
    SuiteParams,
    SuiteResult,
    canonical_metrics_bytes,
)
from repro.evaluation import harness
from repro.evaluation.fig6 import run_fig6
from repro.evaluation.fig8 import run_fig8
from repro.programs import get_subject

#: The two cheapest subjects; everything here stays tier-1 fast.
TINY = ["sed", "grep"]


class TestSubjectArtifactCache:
    def test_learns_once_per_subject(self):
        cache = harness.SubjectArtifactCache()
        subject = get_subject("sed")
        first = cache.get(subject)
        second = cache.get(subject)
        assert second is first
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.queries_spent == first.oracle_queries

    def test_disk_cache_survives_new_instance(self, tmp_path, monkeypatch):
        subject = get_subject("sed")
        writer = harness.SubjectArtifactCache(cache_dir=tmp_path)
        learned = writer.get(subject)

        # A fresh cache over the same directory must reuse the artifact
        # without any learning at all.
        def no_learning(*_args, **_kwargs):
            raise AssertionError("cache miss should not re-learn")

        monkeypatch.setattr(harness, "learn_subject", no_learning)
        reader = harness.SubjectArtifactCache(cache_dir=tmp_path)
        reloaded = reader.get(subject)
        assert reader.misses == 0
        assert reader.queries_spent == 0
        assert reloaded.oracle_queries == learned.oracle_queries
        assert str(reloaded.require_grammar()) == str(
            learned.require_grammar()
        )

    def test_ignores_stale_disk_entry(self, tmp_path):
        """A disk artifact whose seeds no longer match is a miss."""
        subject = get_subject("sed")
        cache = harness.SubjectArtifactCache(cache_dir=tmp_path)
        cache.get(subject)
        # Corrupt every cached file's seed list.
        for path in tmp_path.glob("sed-*.json"):
            text = path.read_text().replace("s/cat/dog/g", "s/cat/dogs/g")
            path.write_text(text)
        fresh = harness.SubjectArtifactCache(cache_dir=tmp_path)
        assert fresh.lookup(subject) is None

    def test_distinct_configs_are_distinct_entries(self):
        from dataclasses import replace

        cache = harness.SubjectArtifactCache()
        subject = get_subject("sed")
        base = harness.default_subject_config(subject)
        cache.get(subject, base)
        cache.get(subject, replace(base, enable_phase2=False))
        assert cache.misses == 2

    def test_execution_knobs_share_one_entry(self):
        """jobs/backend don't change what is learned — same cache key."""
        from dataclasses import replace

        cache = harness.SubjectArtifactCache()
        subject = get_subject("sed")
        base = harness.default_subject_config(subject)
        first = cache.get(subject, base)
        again = cache.get(subject, replace(base, jobs=4, backend="thread"))
        assert again is first
        assert cache.misses == 1


class TestLearnOnceAcrossFigures:
    def test_fig6_then_fig8_learn_xml_exactly_once(self, monkeypatch):
        """The satellite regression: a combined figure run must not
        silently re-learn the XML grammar — zero extra oracle queries
        beyond the single learning run."""
        learns = []
        real_learn = harness.learn_subject

        def counting_learn(subject, config=None):
            learns.append(subject.name)
            return real_learn(subject, config)

        monkeypatch.setattr(harness, "learn_subject", counting_learn)
        cache = harness.SubjectArtifactCache()
        rows = run_fig6(subjects=["xml"], cache=cache)
        result = run_fig8(n_candidates=40, cache=cache)
        assert learns == ["xml"]
        assert cache.misses == 1
        # Query accounting: the cache spent exactly one learning run's
        # oracle queries, no matter how many figures consumed it.
        assert cache.queries_spent == rows[0].oracle_queries
        assert result.n_tried > 0

    def test_suite_reuses_figure_cache(self):
        cache = harness.SubjectArtifactCache()
        run_fig6(subjects=["sed"], cache=cache)
        assert cache.misses == 1
        suite = harness.run_suite(subjects=["sed"], cache=cache)
        assert cache.misses == 1  # no second learning run
        assert "sed" in suite.metrics


class TestSuiteDeterminism:
    def test_metrics_byte_identical_across_jobs(self):
        """The acceptance gate at tier-1 scale: two tiny subjects at
        jobs {1,2} produce byte-identical deterministic metrics."""
        serial = harness.run_suite(
            subjects=TINY, jobs=1, cache=harness.SubjectArtifactCache()
        )
        parallel = harness.run_suite(
            subjects=TINY, jobs=2, cache=harness.SubjectArtifactCache()
        )
        assert canonical_metrics_bytes(serial) == canonical_metrics_bytes(
            parallel
        )

    def test_suite_covers_every_figure_metric(self):
        suite = harness.run_suite(
            subjects=["sed"], cache=harness.SubjectArtifactCache()
        )
        m = suite.metrics["sed"]
        assert len(m.grammar_digest) == 64  # fig 6: the learned grammar
        assert m.oracle_queries > m.unique_queries > 0  # fig 6 cost
        assert 0.0 <= m.precision <= 1.0  # fig 4
        assert 0.5 < m.recall <= 1.0  # fig 4, exact corpus recall
        assert 0.0 < m.fuzz_valid_fraction <= 1.0  # fig 7
        assert m.sample_length > 0  # fig 8
        p = suite.perf["sed"]
        assert p.synthesis_seconds > 0.0
        assert suite.environment["python"]
        rendered = harness.format_suite(suite)
        assert "sed" in rendered

    @pytest.mark.slow
    def test_all_subjects_learn_once_and_match_across_jobs(self):
        """Acceptance criterion at full scale: all eight subjects,
        learning invoked exactly once per subject, metrics
        byte-identical across job counts."""
        caches = {
            jobs: harness.SubjectArtifactCache() for jobs in (1, 4)
        }
        suites = {
            jobs: harness.run_suite(subjects="all", jobs=jobs, cache=cache)
            for jobs, cache in caches.items()
        }
        for jobs, cache in caches.items():
            assert cache.misses == 8, jobs
        blobs = {
            jobs: canonical_metrics_bytes(suite)
            for jobs, suite in suites.items()
        }
        assert blobs[1] == blobs[4]
        assert len(suites[1].metrics) == 8


def tiny_suite() -> SuiteResult:
    return SuiteResult(
        subjects=["sed"],
        params=SuiteParams(eval_samples=10),
        metrics={
            "sed": SubjectMetrics(
                grammar_digest="aa",
                grammar_productions=3,
                oracle_queries=100,
                unique_queries=90,
                seeds_used=4,
                seeds_skipped=1,
                precision=0.8,
                recall=0.9,
                fuzz_valid_fraction=0.7,
                fuzz_new_lines=10,
                sample_valid=True,
                sample_length=50,
            )
        },
        perf={"sed": SubjectPerf(synthesis_seconds=10.0)},
    )


class TestComparator:
    def classify(self, mutate, band=0.30):
        baseline = tiny_suite()
        current = copy.deepcopy(baseline)
        mutate(current)
        comparison = harness.compare(
            current, baseline, wallclock_band=band
        )
        return comparison

    def one_delta(self, comparison, metric):
        deltas = [d for d in comparison.deltas if d.metric == metric]
        assert len(deltas) == 1
        return deltas[0]

    def test_identical_suites_are_stable(self):
        comparison = self.classify(lambda s: None)
        assert comparison.ok()
        assert not comparison.warnings()
        assert all(d.classification == "stable" for d in comparison.deltas)

    def test_digest_drift_is_blocking_either_way(self):
        comparison = self.classify(
            lambda s: setattr(s.metrics["sed"], "grammar_digest", "bb")
        )
        delta = self.one_delta(comparison, "grammar_digest")
        assert delta.classification == "regressed"
        assert delta.blocking
        assert not comparison.ok()

    def test_fewer_queries_is_nonblocking_improvement(self):
        comparison = self.classify(
            lambda s: setattr(s.metrics["sed"], "oracle_queries", 80)
        )
        delta = self.one_delta(comparison, "oracle_queries")
        assert delta.classification == "improved"
        assert not delta.blocking
        assert comparison.ok()
        assert comparison.warnings()

    def test_more_queries_regresses(self):
        comparison = self.classify(
            lambda s: setattr(s.metrics["sed"], "oracle_queries", 120)
        )
        delta = self.one_delta(comparison, "oracle_queries")
        assert delta.classification == "regressed"
        assert delta.blocking

    def test_recall_drop_regresses_exactly(self):
        """Deterministic quality metrics gate on exact equality — even
        a tiny drop blocks."""
        comparison = self.classify(
            lambda s: setattr(s.metrics["sed"], "recall", 0.8999)
        )
        delta = self.one_delta(comparison, "recall")
        assert delta.classification == "regressed"
        assert delta.blocking

    def test_precision_gain_improves(self):
        comparison = self.classify(
            lambda s: setattr(s.metrics["sed"], "precision", 0.9)
        )
        delta = self.one_delta(comparison, "precision")
        assert delta.classification == "improved"
        assert not delta.blocking

    def test_wallclock_within_band_is_stable(self):
        comparison = self.classify(
            lambda s: setattr(s.perf["sed"], "synthesis_seconds", 12.0)
        )
        delta = self.one_delta(comparison, "synthesis_seconds")
        assert delta.classification == "stable"

    def test_wallclock_beyond_band_warns_but_never_blocks(self):
        comparison = self.classify(
            lambda s: setattr(s.perf["sed"], "synthesis_seconds", 20.0)
        )
        delta = self.one_delta(comparison, "synthesis_seconds")
        assert delta.classification == "regressed"
        assert not delta.blocking
        assert comparison.ok()

    def test_speculative_growth_from_zero_warns_but_never_blocks(self):
        """Every perf field is compared (warn-only) — including integer
        speculation counters whose baseline is zero."""
        comparison = self.classify(
            lambda s: setattr(s.perf["sed"], "speculative_queries", 500)
        )
        delta = self.one_delta(comparison, "speculative_queries")
        assert delta.classification == "regressed"
        assert not delta.blocking
        assert comparison.ok()

    def test_wallclock_speedup_beyond_band_improves(self):
        comparison = self.classify(
            lambda s: setattr(s.perf["sed"], "synthesis_seconds", 1.0)
        )
        delta = self.one_delta(comparison, "synthesis_seconds")
        assert delta.classification == "improved"
        assert not delta.blocking

    def test_param_mismatch_blocks(self):
        comparison = self.classify(
            lambda s: setattr(s.params, "eval_samples", 99)
        )
        assert not comparison.ok()
        assert comparison.deltas[0].metric == "params"

    def test_missing_subject_blocks(self):
        def drop(s):
            s.subjects = []
            s.metrics = {}
            s.perf = {}

        comparison = self.classify(drop)
        delta = self.one_delta(comparison, "present")
        assert delta.blocking

    def test_new_subject_does_not_block(self):
        def add(s):
            s.subjects = ["sed", "grep"]
            s.metrics["grep"] = SubjectMetrics(grammar_digest="cc")
            s.perf["grep"] = SubjectPerf()

        comparison = self.classify(add)
        assert comparison.ok()
        delta = self.one_delta(comparison, "present")
        assert delta.classification == "improved"

    def test_format_comparison_mentions_failures(self):
        comparison = self.classify(
            lambda s: setattr(s.metrics["sed"], "grammar_digest", "bb")
        )
        rendered = harness.format_comparison(comparison)
        assert "FAIL" in rendered
        assert "regression" in rendered

    def test_format_comparison_stable(self):
        rendered = harness.format_comparison(self.classify(lambda s: None))
        assert "stable" in rendered


class TestResolveSubjects:
    def test_all_and_none(self):
        assert harness.resolve_subjects("all") == harness.resolve_subjects(
            None
        )
        assert len(harness.resolve_subjects("all")) == 8

    def test_comma_list(self):
        assert harness.resolve_subjects("xml, grep") == ["xml", "grep"]

    def test_duplicates_collapse(self):
        """A duplicated name must not trigger a second learning run."""
        assert harness.resolve_subjects("sed,sed,grep") == ["sed", "grep"]

    def test_unknown_subject(self):
        with pytest.raises(ValueError, match="unknown subject"):
            harness.resolve_subjects("xml,nope")

    def test_empty(self):
        with pytest.raises(ValueError, match="no subjects"):
            harness.resolve_subjects("")


class TestStableSeed:
    def test_deterministic_and_distinct(self):
        assert harness.stable_seed("a", 1) == harness.stable_seed("a", 1)
        assert harness.stable_seed("a", 1) != harness.stable_seed("a", 2)
        assert harness.stable_seed("a") != harness.stable_seed("b")
