"""Tests for the table/series formatters."""


from repro.evaluation.reporting import format_series, format_table


def test_table_alignment():
    rendered = format_table(
        ["name", "value"], [["a", 1], ["longer", 2.5]]
    )
    lines = rendered.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "2.500" in lines[3]


def test_table_column_width_from_data():
    rendered = format_table(["x"], [["wide-cell-content"]])
    header, rule, row = rendered.splitlines()
    assert len(rule) == len("wide-cell-content")


def test_series_layout():
    rendered = format_series(
        "title", [1, 2], [("p", [0.5, 0.6]), ("r", [0.7, 0.8])]
    )
    lines = rendered.splitlines()
    assert lines[0] == "title"
    assert "0.600" in rendered
    assert "0.800" in rendered


class TestSummarizeArtifact:
    """`repro show`: reports are produced from the persisted artifact."""

    def make_artifact(self):
        from repro.core.glade import GladeConfig
        from repro.core.pipeline import LearningPipeline

        config = GladeConfig(alphabet="ab", enable_chargen=False)
        return LearningPipeline(
            lambda s: set(s) <= set("ab"), config=config
        ).run(["ab", "ba"], sources=["corpus/a.txt", "corpus/b.txt"])

    def test_complete_artifact_summary(self):
        from repro.evaluation.reporting import summarize_artifact

        artifact = self.make_artifact()
        rendered = summarize_artifact(artifact)
        assert "status: complete" in rendered
        assert "corpus/a.txt" in rendered
        assert "phase-one regex [0]" in rendered
        assert str(artifact.grammar) in rendered
        assert "oracle queries: {}".format(artifact.oracle_queries) in rendered

    def test_in_progress_artifact_summary(self):
        from repro.artifacts import RunArtifact, SeedRecord
        from repro.evaluation.reporting import summarize_artifact

        artifact = RunArtifact(seeds=[SeedRecord(text="ab", source="s:1")])
        rendered = summarize_artifact(artifact)
        assert "status: in_progress" in rendered
        assert "grammar: not yet translated" in rendered
        assert "pending" in rendered

    def test_summary_survives_serialization(self):
        import json

        from repro.artifacts import RunArtifact
        from repro.evaluation.reporting import summarize_artifact

        artifact = self.make_artifact()
        restored = RunArtifact.from_dict(
            json.loads(json.dumps(artifact.to_dict()))
        )
        assert summarize_artifact(restored) == summarize_artifact(artifact)
