"""Tests for the table/series formatters."""

from repro.evaluation.reporting import format_series, format_table


def test_table_alignment():
    rendered = format_table(
        ["name", "value"], [["a", 1], ["longer", 2.5]]
    )
    lines = rendered.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "2.500" in lines[3]


def test_table_column_width_from_data():
    rendered = format_table(["x"], [["wide-cell-content"]])
    header, rule, row = rendered.splitlines()
    assert len(rule) == len("wide-cell-content")


def test_series_layout():
    rendered = format_series(
        "title", [1, 2], [("p", [0.5, 0.6]), ("r", [0.7, 0.8])]
    )
    lines = rendered.splitlines()
    assert lines[0] == "title"
    assert "0.600" in rendered
    assert "0.800" in rendered
