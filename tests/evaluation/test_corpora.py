"""The Figure 7(b) test-suite corpora must be valid for their parsers."""

import pytest

from repro.evaluation.corpora import CORPORA
from repro.programs import get_subject


@pytest.mark.parametrize("name", sorted(CORPORA))
def test_corpus_entries_all_valid(name):
    subject = get_subject(name)
    invalid = [c for c in CORPORA[name] if not subject.accepts(c)]
    assert invalid == []


@pytest.mark.parametrize("name", sorted(CORPORA))
def test_corpus_is_reasonably_large(name):
    assert len(CORPORA[name]) >= 40


@pytest.mark.parametrize("name", sorted(CORPORA))
def test_corpus_has_no_duplicates(name):
    corpus = CORPORA[name]
    assert len(set(corpus)) == len(corpus)
