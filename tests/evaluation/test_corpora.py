"""The fixed corpora must be valid for their parsers: the Figure 7(b)
proxies and the harness's recall corpora both claim every entry ∈ L*."""

import pytest

from repro.evaluation.corpora import CORPORA, EVAL_CORPORA, eval_corpus
from repro.programs import SUBJECT_NAMES, get_subject


@pytest.mark.parametrize("name", sorted(CORPORA))
def test_corpus_entries_all_valid(name):
    subject = get_subject(name)
    invalid = [c for c in CORPORA[name] if not subject.accepts(c)]
    assert invalid == []


@pytest.mark.parametrize("name", sorted(EVAL_CORPORA))
def test_eval_corpus_entries_all_valid(name):
    """Recall is measured against these exact strings; an invalid entry
    would penalize every learned grammar unconditionally."""
    subject = get_subject(name)
    invalid = [c for c in EVAL_CORPORA[name] if not subject.accepts(c)]
    assert invalid == []


def test_every_subject_has_an_eval_corpus():
    assert sorted(EVAL_CORPORA) == sorted(SUBJECT_NAMES)


@pytest.mark.parametrize("name", sorted(EVAL_CORPORA))
def test_eval_corpus_prepends_seeds(name):
    subject = get_subject(name)
    corpus = eval_corpus(name)
    assert corpus[: len(subject.seeds)] == list(subject.seeds)
    assert len(corpus) > len(subject.seeds)


@pytest.mark.parametrize("name", sorted(CORPORA))
def test_corpus_is_reasonably_large(name):
    assert len(CORPORA[name]) >= 40


@pytest.mark.parametrize("name", sorted(CORPORA))
def test_corpus_has_no_duplicates(name):
    corpus = CORPORA[name]
    assert len(set(corpus)) == len(corpus)
