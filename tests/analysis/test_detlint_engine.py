"""Engine-layer tests: suppression comments, baseline round-trip,
fingerprint stability, and result bookkeeping."""

import pathlib
import shutil

import pytest

from repro.analysis import analyze_paths
from repro.analysis.baseline import (
    BaselineError,
    load_baseline,
    save_baseline,
)
from repro.analysis.findings import (
    STATUS_BASELINED,
    STATUS_NEW,
    STATUS_SUPPRESSED,
    Finding,
)

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------


def test_line_and_file_suppressions():
    result = analyze_paths([FIXTURES / "suppressed.py"])
    assert result.new_findings() == []
    suppressed = [
        f for f in result.findings if f.status == STATUS_SUPPRESSED
    ]
    assert sorted(f.rule for f in suppressed) == ["DET002", "DET004"]


def test_suppression_is_rule_specific(tmp_path):
    # A disable for one rule must not hide another rule's finding on
    # the same line.
    source = (
        "import random\n"
        "RNG = random.Random()  # detlint: disable=DET004\n"
    )
    target = tmp_path / "wrong_rule.py"
    target.write_text(source)
    result = analyze_paths([target])
    assert [f.rule for f in result.new_findings()] == ["DET002"]


def test_bare_disable_suppresses_all_rules(tmp_path):
    source = (
        "import random\n"
        "RNG = random.Random()  # detlint: disable\n"
    )
    target = tmp_path / "bare.py"
    target.write_text(source)
    result = analyze_paths([target])
    assert result.new_findings() == []
    assert [f.status for f in result.findings] == [STATUS_SUPPRESSED]


def test_marker_inside_string_is_not_a_suppression(tmp_path):
    # Suppressions are parsed from real comment tokens, not substring
    # matches, so a marker inside a string literal changes nothing.
    source = (
        "import random\n"
        'DOC = "# detlint: disable=DET002"\n'
        "RNG = random.Random()\n"
    )
    target = tmp_path / "stringy.py"
    target.write_text(source)
    result = analyze_paths([target])
    assert [f.rule for f in result.new_findings()] == ["DET002"]


# ----------------------------------------------------------------------
# Baseline round-trip
# ----------------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    fixture = FIXTURES / "det004_pos.py"
    first = analyze_paths([fixture])
    assert len(first.new_findings()) == 3

    baseline_path = tmp_path / "baseline.json"
    save_baseline(first.findings, baseline_path)
    fingerprints = load_baseline(baseline_path)
    assert len(fingerprints) == 3

    second = analyze_paths(
        [fixture], baseline_fingerprints=fingerprints
    )
    assert second.new_findings() == []
    assert second.counts() == {STATUS_BASELINED: 3}


def test_baseline_does_not_mask_fresh_findings(tmp_path):
    fixture = tmp_path / "det004_pos.py"
    shutil.copy(FIXTURES / "det004_pos.py", fixture)
    result = analyze_paths([fixture])
    baseline_path = tmp_path / "baseline.json"
    save_baseline(result.findings, baseline_path)

    # Introduce a new bug of a different rule; only it should gate.
    with fixture.open("a") as handle:
        handle.write(
            "\n\nimport random\n\n"
            "def fresh():\n"
            "    return random.random()\n"
        )
    rerun = analyze_paths(
        [fixture], baseline_fingerprints=load_baseline(baseline_path)
    )
    fresh = rerun.new_findings()
    assert [f.rule for f in fresh] == ["DET002"]
    assert rerun.counts()[STATUS_BASELINED] == 3


def test_fingerprints_survive_line_drift(tmp_path):
    # Fingerprints hash the line *text*, not the line number, so
    # prepending unrelated code does not invalidate a baseline.
    original = tmp_path / "drift.py"
    shutil.copy(FIXTURES / "det004_pos.py", original)
    before = {
        f.fingerprint for f in analyze_paths([original]).findings
    }
    shifted = original.read_text().replace(
        '"""', '"""\n\n# a comment pushing everything down\n', 1
    )
    original.write_text("# leading comment\n\n" + shifted)
    after = {
        f.fingerprint for f in analyze_paths([original]).findings
    }
    assert before == after


def test_load_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(BaselineError):
        load_baseline(bad)
    wrong_kind = tmp_path / "wrong.json"
    wrong_kind.write_text('{"kind": "something-else", "version": 1}')
    with pytest.raises(BaselineError):
        load_baseline(wrong_kind)


def test_load_baseline_missing_file(tmp_path):
    with pytest.raises(BaselineError):
        load_baseline(tmp_path / "absent.json")


# ----------------------------------------------------------------------
# Result bookkeeping
# ----------------------------------------------------------------------


def test_findings_sorted_and_serializable():
    result = analyze_paths([FIXTURES])
    keys = [(f.path, f.line, f.col, f.rule) for f in result.findings]
    assert keys == sorted(keys)
    for finding in result.findings:
        rebuilt = Finding.from_dict(finding.to_dict())
        assert rebuilt == finding


def test_statuses_partition_findings():
    result = analyze_paths([FIXTURES])
    statuses = {f.status for f in result.findings}
    assert statuses <= {STATUS_NEW, STATUS_BASELINED, STATUS_SUPPRESSED}
    assert result.files_analyzed == len(list(FIXTURES.glob("*.py")))


def test_missing_path_raises():
    with pytest.raises(FileNotFoundError):
        analyze_paths([FIXTURES / "does_not_exist"])
