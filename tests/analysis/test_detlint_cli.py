"""CLI-level tests for ``repro lint``: the exit-status contract, JSON
reports, the write-baseline workflow, the committed-baseline self-lint
(the CI gate run in-process), and the fig7 hash-seeding regression."""

import json
import pathlib

from repro.analysis.baseline import load_baseline
from repro.cli import main

HERE = pathlib.Path(__file__).resolve()
FIXTURES = HERE.parent / "fixtures"
REPO_ROOT = HERE.parents[2]

#: The PR-5 figure-7 bug, reduced: seeding an RNG from the builtin
#: (process-salted) hash() makes every fuzzing run unrepeatable.
FIG7_BUG = (
    "import random\n"
    "\n"
    "\n"
    "def rng_for(fuzzer, seed):\n"
    '    return random.Random(hash(("fig7", fuzzer, seed)))\n'
)


# ----------------------------------------------------------------------
# Exit-status contract
# ----------------------------------------------------------------------


def test_check_fails_on_every_positive_fixture(monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)  # no default baseline in scope
    for stem in (
        "det001", "det002", "det003", "det004", "par001", "par002"
    ):
        fixture = FIXTURES / (stem + "_pos.py")
        assert main(["lint", str(fixture), "--check"]) == 1, stem
        assert main(["lint", str(fixture)]) == 0, stem  # informational


def test_check_passes_on_negative_fixtures(monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    for stem in (
        "det001", "det002", "det003", "det004", "par001", "par002"
    ):
        fixture = FIXTURES / (stem + "_neg.py")
        assert main(["lint", str(fixture), "--check"]) == 0, stem


def test_usage_errors_exit_2(monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "no/such/path", "--check"]) == 2
    target = FIXTURES / "det001_neg.py"
    assert main(
        ["lint", str(target), "--baseline", "absent.json"]
    ) == 2


# ----------------------------------------------------------------------
# JSON report and baseline workflow
# ----------------------------------------------------------------------


def test_json_report_shape(monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    report_path = tmp_path / "report.json"
    rc = main([
        "lint", str(FIXTURES / "det002_pos.py"),
        "--json", str(report_path),
    ])
    assert rc == 0
    report = json.loads(report_path.read_text())
    assert report["kind"] == "detlint-report"
    assert report["version"] == 1
    assert report["files_analyzed"] == 1
    assert report["counts"] == {"new": 3}
    assert {r["id"] for r in report["rules"]} >= {"DET002"}
    for entry in report["findings"]:
        assert entry["rule"] == "DET002"
        assert entry["fingerprint"]


def test_write_baseline_then_check_passes(monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    import shutil

    target = tmp_path / "legacy.py"
    shutil.copy(FIXTURES / "det004_pos.py", target)
    baseline = tmp_path / "bl.json"
    assert main([
        "lint", str(target), "--write-baseline",
        "--baseline", str(baseline),
    ]) == 0
    assert len(load_baseline(baseline)) == 3
    assert main([
        "lint", str(target), "--check", "--baseline", str(baseline),
    ]) == 0


def test_default_baseline_is_picked_up(monkeypatch, tmp_path):
    import shutil

    monkeypatch.chdir(tmp_path)
    target = tmp_path / "legacy.py"
    shutil.copy(FIXTURES / "det004_pos.py", target)
    # --write-baseline with no --baseline writes the default name,
    # which a later bare --check run must discover on its own.
    assert main(["lint", str(target), "--write-baseline"]) == 0
    assert (tmp_path / "detlint-baseline.json").exists()
    assert main(["lint", str(target), "--check"]) == 0


# ----------------------------------------------------------------------
# Self-lint: the shipped tree is clean against the committed baseline
# ----------------------------------------------------------------------


def test_shipped_tree_is_lint_clean():
    # Exactly what CI's lint-gate runs: src/ must produce no new
    # findings given the committed (currently empty) baseline.
    rc = main([
        "lint", str(REPO_ROOT / "src"), "--check", "--quiet",
        "--baseline", str(REPO_ROOT / "detlint-baseline.json"),
    ])
    assert rc == 0


def test_committed_baseline_is_empty():
    # Fixes beat baselining: the tree ships with zero known debt, so
    # any future baselined finding is a deliberate, reviewed addition.
    assert load_baseline(REPO_ROOT / "detlint-baseline.json") == set()


# ----------------------------------------------------------------------
# Regression: the fig7 process-salted hash() bug must be caught
# ----------------------------------------------------------------------


def test_fig7_hash_seed_bug_is_caught(monkeypatch, tmp_path):
    monkeypatch.chdir(tmp_path)
    module = tmp_path / "fig7_seed.py"
    module.write_text(FIG7_BUG)
    report_path = tmp_path / "report.json"
    rc = main([
        "lint", str(module), "--check", "--json", str(report_path),
    ])
    assert rc == 1
    report = json.loads(report_path.read_text())
    det001 = [
        f for f in report["findings"] if f["rule"] == "DET001"
    ]
    assert len(det001) == 1
    assert det001[0]["line"] == 5
    assert "hash" in det001[0]["line_text"]


def test_fig7_fix_shape_is_clean(monkeypatch, tmp_path):
    # The shipped replacement pattern (stable_seed over a blake2b
    # digest) must not trip the rule the bug does.
    monkeypatch.chdir(tmp_path)
    module = tmp_path / "fig7_fixed.py"
    module.write_text(
        "import random\n"
        "\n"
        "from repro.evaluation.harness import stable_seed\n"
        "\n"
        "\n"
        "def rng_for(fuzzer, seed):\n"
        '    return random.Random(stable_seed("fig7", fuzzer, seed))\n'
    )
    assert main(["lint", str(module), "--check"]) == 0
