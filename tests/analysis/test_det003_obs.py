"""DET003 × observability: the ``repro.obs`` exemption and the
telemetry taint sources that justify it.

The obs package reads the clock on nearly every line *by design* — its
output lands only in telemetry sections that every deterministic
comparison surface excludes — so the rule exempts it wholesale. The
flip side, verified here, is that reading telemetry *out* (snapshots,
Stopwatch.seconds, histogram totals) taints the value, so trace data
still cannot flow into a CI-compared ``SubjectMetrics`` field.
"""

import pathlib

from repro.analysis import analyze_paths

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
OBS_DIR = (
    pathlib.Path(__file__).resolve().parents[2] / "src" / "repro" / "obs"
)


def _analyze(path):
    return analyze_paths([path], select=["DET003"]).new_findings()


def test_telemetry_reads_taint_deterministic_fields():
    findings = _analyze(FIXTURES / "det003_obs_pos.py")
    assert len(findings) == 2
    assert all(f.rule == "DET003" for f in findings)


def test_telemetry_reads_into_perf_fields_are_clean():
    assert _analyze(FIXTURES / "det003_obs_neg.py") == []


def test_obs_package_is_exempt():
    # The exemption is scoped by module name (repro.obs[.*]), which the
    # project indexer derives by walking __init__.py packages — so it
    # holds both for `repro lint src/` and for linting the directory.
    assert _analyze(OBS_DIR) == []
