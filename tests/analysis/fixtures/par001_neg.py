"""PAR001 negative fixture: tasks keep state local. Zero findings.

Reading a module-level table that nothing ever mutates is fine; the
rule only cares about shared *mutable-and-mutated* state reachable
from task entry points.
"""

TASK_ENTRY_POINTS = ("worker",)

_WEIGHTS = {"a": 1, "b": 2}


def worker(payload):
    acc = []
    acc.append(payload)
    return score(acc)


def score(items):
    return sum(_WEIGHTS.get(item, 0) for item in items)
