"""DET001 positive fixture: salted hash() reaching seeds/digests.

Every function here must produce exactly one DET001 finding.
"""

import random


def fig7_style_seed(fuzzer, seed):
    # The PR-5 fig7 bug, verbatim shape: builtin hash() over a tuple
    # containing a string, fed straight into an RNG seed. The value
    # changes per process under PYTHONHASHSEED salting.
    return random.Random(hash(("fig7", fuzzer, seed)))


def digest_of(payload):
    digest = hash(payload)
    return digest


def cache_key(name):
    return hash("cache:" + name)
