"""DET002 positive fixture: ambient / unseeded RNG. Three findings."""

import random
from random import Random


def ambient_choice(options):
    return random.choice(options)


def unseeded_instance():
    return Random()


def shuffled(items):
    copy = list(items)
    random.shuffle(copy)
    return copy
