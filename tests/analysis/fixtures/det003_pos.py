"""DET003 positive fixture: wall-clock values reaching deterministic
artifact fields (the SubjectMetrics side of the suite contract)."""

import time

from repro.artifacts.suite import SubjectMetrics


def record_metrics(metrics, run):
    started = time.perf_counter()
    run()
    elapsed = time.perf_counter() - started
    # Storing a timing into a CI-compared field: every rerun differs.
    metrics.oracle_queries = int(elapsed * 1000)
    return elapsed


def build_metrics(run):
    started = time.monotonic()
    run()
    cost = time.monotonic() - started
    return SubjectMetrics(precision=cost)
