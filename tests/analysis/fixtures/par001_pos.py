"""PAR001 positive fixture: executor tasks touching shared module state.

Self-contained: registers its own TASK_ENTRY_POINTS so the rule's
call-graph walk starts here. The helper is reached transitively.
"""

TASK_ENTRY_POINTS = ("worker",)

_RESULTS = []
_CACHE = {}


def worker(payload):
    _RESULTS.append(payload)
    remember(payload)
    return _CACHE


def remember(payload):
    _CACHE[payload] = True
