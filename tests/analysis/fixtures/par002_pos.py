"""PAR002 positive fixture: process-local resources held by a class
with no __getstate__. Two findings (the lock and the pool)."""

import threading
from concurrent.futures import ThreadPoolExecutor


class PoolHolder:
    def __init__(self, workers):
        self._lock = threading.Lock()
        self._pool = ThreadPoolExecutor(max_workers=workers)

    def submit(self, fn):
        with self._lock:
            return self._pool.submit(fn)
