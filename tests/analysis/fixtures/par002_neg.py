"""PAR002 negative fixture: the lock is excluded from pickling via
__getstate__/__setstate__, so crossing a process boundary is safe."""

import threading


class GuardedCounter:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def bump(self):
        with self._lock:
            self.count += 1

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()
