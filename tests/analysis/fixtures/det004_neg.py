"""DET004 negative fixture: set iteration done safely. Zero findings."""


def render(names):
    return ", ".join(sorted(set(names)))


def total(values):
    return sum(v * v for v in set(values))


def widest(words):
    return max(set(words), key=len)


def ordered(edges):
    out = []
    for edge in sorted(set(edges)):
        out.append(edge)
    return out
