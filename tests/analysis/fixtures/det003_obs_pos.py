"""DET003 positive fixture: telemetry reads are taint sources.

No ``time.*`` call in sight — the wall-clock data arrives through the
observability read API (a registry snapshot, a Stopwatch reading) and
must still be blocked from deterministic metric fields. This is the
property that justifies the blanket ``repro.obs`` exemption: timings
cannot be laundered back into compared fields through the obs API.
"""

from repro.artifacts.suite import SubjectMetrics
from repro.obs.metrics import MetricsRegistry, Stopwatch, histogram_total


def leak_snapshot(run):
    registry = MetricsRegistry()
    with registry.timer("seed.seconds"):
        run()
    snap = registry.snapshot()
    cost = histogram_total(snap, "seed.seconds")
    # A histogram total is a wall-clock sum; precision is CI-compared.
    return SubjectMetrics(precision=cost)


def leak_stopwatch(metrics, run):
    watch = Stopwatch()
    run()
    # Stopwatch.seconds is a live perf_counter read behind a property.
    metrics.sample_length = int(watch.seconds)
    return metrics
