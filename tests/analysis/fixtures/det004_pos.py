"""DET004 positive fixture: set iteration feeding ordered sinks.

Three findings: join(), a materializing for-loop, and list().
"""


def render(names):
    unique = set(names)
    return ", ".join(unique)


def collect(edges):
    out = []
    for edge in set(edges):
        out.append(edge)
    return out


def materialize(chars):
    return list(set(chars))
