"""DET002 negative fixture: explicitly seeded RNG. Zero findings."""

import random


def seeded(seed):
    return random.Random(seed)


def draw(rng, options):
    # An injected random.Random instance is the sanctioned pattern:
    # the caller owns seeding, so methods on it are deterministic.
    return rng.choice(options)
