"""DET003 negative fixture: telemetry reads confined to perf fields.

The observability read API may feed SubjectPerf (warn-only) and plain
telemetry plumbing without findings — only the deterministic
SubjectMetrics surface is fenced.
"""

from repro.obs.metrics import MetricsRegistry


def record_perf(perf, run):
    registry = MetricsRegistry()
    with registry.timer("subject.seconds") as timer:
        run()
    perf.metrics_seconds = timer.seconds
    return registry.snapshot()


def ship_telemetry(run):
    registry = MetricsRegistry()
    with registry.timer("subject.seconds"):
        run()
    return {"telemetry": {"metrics": registry.snapshot()}}
