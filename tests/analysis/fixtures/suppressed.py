# detlint: disable-file=DET004
"""Suppression fixture: one line-level and one file-wide suppression.

Analyzed with DET002+DET004 selected this file yields zero *new*
findings and two *suppressed* ones.
"""

import random

RNG = random.Random()  # detlint: disable=DET002


def render(names):
    return ", ".join(set(names))
