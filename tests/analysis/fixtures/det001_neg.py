"""DET001 negative fixture: legitimate hash() uses. Zero findings."""


class Key:
    def __init__(self, left, right):
        self.left = left
        self.right = right

    def __hash__(self):
        # In-process hashing for dict/set membership is fine; only
        # values that escape the process (seeds, digests, ordering)
        # must avoid the salted builtin.
        return hash((self.left, self.right))

    def __eq__(self, other):
        return (self.left, self.right) == (other.left, other.right)


def bucket_count(pairs):
    table = {}
    for key, value in pairs:
        table[Key(key, value)] = value
    return len(table)
