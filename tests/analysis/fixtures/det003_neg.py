"""DET003 negative fixture: wall-clock confined to perf fields.

Timings may flow into SubjectPerf (warn-only, excluded from the
determinism comparison) without findings.
"""

import time

from repro.artifacts.suite import SubjectPerf


def record_perf(perf, run):
    started = time.perf_counter()
    run()
    perf.synthesis_seconds = time.perf_counter() - started
    return perf


def build_perf(run):
    started = time.monotonic()
    run()
    return SubjectPerf(metrics_seconds=time.monotonic() - started)
