"""Per-rule fixture tests: every rule fires on its positive fixture
and stays silent on its negative twin.

The fixtures live in ``tests/analysis/fixtures`` and are deliberately
excluded from ruff (ruff.toml) — they *are* the bugs.
"""

import pathlib

import pytest

from repro.analysis import analyze_paths, rule_ids

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"

#: (fixture stem, rule id, findings expected on the positive fixture)
CASES = [
    ("det001", "DET001", 3),
    ("det002", "DET002", 3),
    ("det003", "DET003", 2),
    ("det004", "DET004", 3),
    ("par001", "PAR001", 5),
    ("par002", "PAR002", 1),
]


def _analyze(name, rule):
    result = analyze_paths([FIXTURES / name], select=[rule])
    return result.new_findings()


@pytest.mark.parametrize("stem,rule,expected", CASES)
def test_positive_fixture_fires(stem, rule, expected):
    findings = _analyze(stem + "_pos.py", rule)
    assert len(findings) == expected
    assert all(f.rule == rule for f in findings)


@pytest.mark.parametrize("stem,rule,expected", CASES)
def test_negative_fixture_is_clean(stem, rule, expected):
    assert _analyze(stem + "_neg.py", rule) == []


@pytest.mark.parametrize("stem,rule,expected", CASES)
def test_findings_carry_location_and_excerpt(stem, rule, expected):
    for finding in _analyze(stem + "_pos.py", rule):
        assert finding.path == stem + "_pos.py"
        assert finding.line >= 1
        assert finding.line_text.strip()
        human = finding.format_human()
        assert human.startswith(
            "{}:{}:".format(finding.path, finding.line)
        )
        assert rule in human


def test_rule_registry_is_complete():
    assert rule_ids() == [
        "DET001", "DET002", "DET003", "DET004", "PAR001", "PAR002",
    ]


def test_select_filters_other_rules():
    # The PAR001 fixture also trips nothing else; selecting a
    # different rule over it must return no findings at all.
    result = analyze_paths(
        [FIXTURES / "par001_pos.py"], select=["DET002"]
    )
    assert result.findings == []


def test_par001_reports_call_chain():
    findings = _analyze("par001_pos.py", "PAR001")
    chains = {f.detail for f in findings if f.detail}
    # The helper is only reachable through the entry point; its
    # finding must carry the full chain.
    assert any("->" in chain for chain in chains)
