"""Suite-level tracing: observation only, grafted per-subject shards.

``repro eval --trace`` must leave the compared surface untouched —
``canonical_metrics_bytes`` identical with tracing on or off — while
collecting every freshly learned subject's spans under a
``subject:<name>`` shard prefix in one timeline.
"""

import json

import pytest

from repro.artifacts.suite import (
    canonical_metrics_bytes,
    load_suite,
    save_suite,
)
from repro.evaluation import harness


@pytest.fixture(scope="module")
def suites():
    untraced = harness.run_suite(
        subjects=["sed"], cache=harness.SubjectArtifactCache()
    )
    traced = harness.run_suite(
        subjects=["sed"], cache=harness.SubjectArtifactCache(), trace=True
    )
    return untraced, traced


def test_tracing_does_not_move_canonical_metrics_bytes(suites):
    untraced, traced = suites
    assert canonical_metrics_bytes(traced) == canonical_metrics_bytes(
        untraced
    )
    assert untraced.telemetry is None


def test_suite_trace_has_subject_shards_and_spans(suites):
    _untraced, traced = suites
    spans = traced.telemetry["spans"]
    assert spans
    shards = {span["shard"] for span in spans}
    assert any(shard.startswith("subject:sed") for shard in shards)
    # The metric-derivation spans live in the suite's main shard.
    names = {span["name"] for span in spans if span["shard"] == ""}
    assert "subject:sed" in names
    metrics = traced.telemetry["metrics"]
    assert metrics["histograms"]["subject.seconds"]["count"] == 1


def test_suite_telemetry_round_trips(tmp_path, suites):
    _untraced, traced = suites
    path = tmp_path / "BENCH_suite.json"
    save_suite(traced, path)
    loaded = load_suite(path)
    assert loaded.telemetry == traced.telemetry
    assert loaded.schema_version == traced.schema_version
    assert json.loads(json.dumps(traced.telemetry)) == traced.telemetry


def test_untraced_suite_files_without_telemetry_key_load(suites):
    # Committed baselines predate the telemetry section entirely.
    untraced, _traced = suites
    data = untraced.to_dict()
    data.pop("telemetry")
    from repro.artifacts.suite import SuiteResult

    loaded = SuiteResult.from_dict(data)
    assert loaded.telemetry is None
