"""Unit tests for the tracing/metrics primitives themselves."""

import pickle

from repro.obs.metrics import (
    MetricsRegistry,
    StageClock,
    counters_with_prefix,
    histogram_total,
)
from repro.obs.trace import NULL_TRACER, Tracer


def spans_by_name(tracer):
    return {span["name"]: span for span in tracer.snapshot()}


class TestTracer:
    def test_nesting_links_parents_and_inherits_shards(self):
        tracer = Tracer()
        with tracer.span("outer", shard="seed:0"):
            with tracer.span("inner"):
                pass
        spans = spans_by_name(tracer)
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["shard"] == "seed:0"
        assert spans["inner"]["dur"] <= spans["outer"]["dur"]

    def test_absorb_remaps_ids_under_parent(self):
        parent = Tracer()
        with parent.span("stage") as handle:
            stage_id = handle.id
        worker = Tracer()
        with worker.span("task"):
            with worker.span("step"):
                pass
        parent.absorb("seed:3", worker.snapshot(), parent=stage_id)
        spans = spans_by_name(parent)
        assert spans["task"]["parent"] == stage_id
        assert spans["step"]["parent"] == spans["task"]["id"]
        assert spans["task"]["shard"] == "seed:3"
        ids = [span["id"] for span in parent.snapshot()]
        assert len(ids) == len(set(ids))

    def test_graft_prefixes_foreign_shards(self):
        inner = Tracer()
        with inner.span("seed", shard="seed:1"):
            pass
        with inner.span("run"):
            pass
        outer = Tracer()
        outer.graft("subject:xml", inner.snapshot())
        shards = {span["shard"] for span in outer.snapshot()}
        assert shards == {"subject:xml", "subject:xml/seed:1"}

    def test_discard_shard_drops_spans(self):
        tracer = Tracer()
        with tracer.span("kept", shard="seed:0"):
            pass
        with tracer.span("spec", shard="seed:1"):
            pass
        assert tracer.discard_shard("seed:1") == 1
        assert [s["name"] for s in tracer.snapshot()] == ["kept"]

    def test_snapshot_orders_shards_naturally(self):
        tracer = Tracer()
        for index in (10, 2, 1):
            with tracer.span("s", shard="seed:{}".format(index)):
                pass
        shards = [span["shard"] for span in tracer.snapshot()]
        assert shards == ["seed:1", "seed:2", "seed:10"]

    def test_span_cap_counts_drops(self):
        tracer = Tracer(max_spans=2)
        for index in range(4):
            tracer.event("e{}".format(index))
        assert len(tracer.snapshot()) == 2
        assert tracer.dropped == 2

    def test_pickle_round_trip_rebuilds_local_state(self):
        tracer = Tracer()
        with tracer.span("before"):
            pass
        clone = pickle.loads(pickle.dumps(tracer))
        with clone.span("after"):
            pass
        assert {s["name"] for s in clone.snapshot()} == {"before", "after"}

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything"):
            NULL_TRACER.event("instant")
        assert NULL_TRACER.snapshot() == []
        assert NULL_TRACER.discard_shard("seed:0") == 0


class TestMetricsRegistry:
    def test_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.add("oracle.calls")
        registry.add("oracle.calls", 2)
        registry.observe("depth", 3.0)
        registry.observe("depth", 1.0)
        snap = registry.snapshot()
        assert snap["counters"]["oracle.calls"] == 3
        assert snap["histograms"]["depth"] == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0,
        }

    def test_merge_is_order_independent_for_totals(self):
        parts = []
        for value in (1.0, 5.0, 2.0):
            registry = MetricsRegistry()
            registry.add("tasks")
            registry.observe("seconds", value)
            parts.append(registry.snapshot())
        merged = MetricsRegistry()
        for part in parts:
            merged.merge(part)
        snap = merged.snapshot()
        assert snap["counters"]["tasks"] == 3
        assert snap["histograms"]["seconds"]["min"] == 1.0
        assert snap["histograms"]["seconds"]["max"] == 5.0
        assert histogram_total(snap, "seconds") == 8.0

    def test_timer_observes_on_exit(self):
        registry = MetricsRegistry()
        with registry.timer("seconds") as timer:
            pass
        assert timer.seconds >= 0.0
        assert registry.snapshot()["histograms"]["seconds"]["count"] == 1

    def test_counters_with_prefix_strips(self):
        registry = MetricsRegistry()
        registry.add("engine.dense_matches", 4)
        registry.add("other", 1)
        assert counters_with_prefix(
            registry.snapshot(), "engine."
        ) == {"dense_matches": 4}
        assert histogram_total(None, "x") == 0.0
        assert counters_with_prefix(None, "engine.") == {}


class TestStageClock:
    def test_accumulates_over_base_and_open_stages(self):
        clock = StageClock({"phase1": 1.0})
        with clock.stage("phase1"):
            mid = clock.timings()
            assert mid["phase1"] >= 1.0
        done = clock.timings()
        assert done["phase1"] >= 1.0
        with clock.stage("phase2"):
            pass
        assert set(clock.timings()) == {"phase1", "phase2"}
