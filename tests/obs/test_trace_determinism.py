"""Tracing must observe without perturbing, at any parallelism.

Two gated properties:

- zero drift: with tracing *on*, the learned grammar and the counted
  query totals are byte-identical to the untraced run, at jobs 1 and 4
  (the acceptance criterion for the whole observability layer);
- structural determinism: the *shape* of the trace — shard layout,
  span nesting, names, categories for the deterministic span classes —
  is identical across jobs {1, 2, 4} and the serial/thread/process
  backends; only timestamps and durations may differ.
"""

import json

import pytest

from repro.artifacts import grammar_to_dict
from repro.core.glade import GladeConfig
from repro.core.pipeline import LearningPipeline
from repro.obs.export import span_structure
from repro.targets import get_target


@pytest.fixture(scope="module")
def xml():
    return get_target("xml")


@pytest.fixture(scope="module")
def seeds(xml):
    return sorted(xml.sample_seeds(4, seed=0), key=len)


def learn(xml, seeds, jobs, backend, trace):
    config = GladeConfig(
        alphabet=xml.alphabet, jobs=jobs, backend=backend, trace=trace
    )
    return LearningPipeline(xml.oracle, config=config).run(seeds)


@pytest.fixture(scope="module")
def untraced_reference(xml, seeds):
    return learn(xml, seeds, 1, "serial", trace=False)


@pytest.fixture(scope="module")
def traced_reference(xml, seeds):
    return learn(xml, seeds, 1, "serial", trace=True)


def serialized(artifact):
    return json.dumps(grammar_to_dict(artifact.grammar), sort_keys=True)


@pytest.mark.parametrize("jobs,backend", [
    (1, "serial"),
    (4, "thread"),
], ids=["serial-j1", "thread-j4"])
def test_tracing_causes_zero_drift(
    xml, seeds, untraced_reference, jobs, backend
):
    traced = learn(xml, seeds, jobs, backend, trace=True)
    assert serialized(traced) == serialized(untraced_reference)
    assert str(traced.grammar) == str(untraced_reference.grammar)
    assert traced.oracle_queries == untraced_reference.oracle_queries
    assert traced.unique_queries == untraced_reference.unique_queries
    assert [s.queries for s in traced.seeds] == [
        s.queries for s in untraced_reference.seeds
    ]


def test_disabled_tracer_leaves_artifact_untouched(untraced_reference):
    assert untraced_reference.telemetry is None


@pytest.mark.slow
@pytest.mark.parametrize("jobs,backend", [
    (2, "thread"),
    (4, "thread"),
    (2, "process"),
    (4, "process"),
], ids=["thread-j2", "thread-j4", "process-j2", "process-j4"])
def test_span_structure_is_jobs_invariant(
    xml, seeds, traced_reference, jobs, backend
):
    traced = learn(xml, seeds, jobs, backend, trace=True)
    assert span_structure(traced.telemetry) == span_structure(
        traced_reference.telemetry
    )


def test_span_structure_thread_j2_matches_serial(
    xml, seeds, traced_reference
):
    # The tier-1 (not slow) representative of the invariance matrix.
    traced = learn(xml, seeds, 2, "thread", trace=True)
    assert span_structure(traced.telemetry) == span_structure(
        traced_reference.telemetry
    )
