"""Telemetry sections: schema round-trip, Chrome export, stats report.

The trace section is observation-only data riding the v4 run artifact;
these tests pin its wire shape (version/spans/metrics), its survival
through save/load, and the validity of the Chrome ``trace_event``
export that ``repro trace`` produces.
"""

import json

import pytest

from repro.artifacts import load_artifact, save_artifact
from repro.core.glade import GladeConfig
from repro.core.pipeline import LearningPipeline
from repro.obs.export import (
    TELEMETRY_VERSION,
    build_telemetry,
    chrome_trace,
    span_structure,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.targets import get_target


@pytest.fixture(scope="module")
def xml():
    return get_target("xml")


@pytest.fixture(scope="module")
def seeds(xml):
    return sorted(xml.sample_seeds(3, seed=0), key=len)


@pytest.fixture(scope="module")
def traced(xml, seeds):
    config = GladeConfig(alphabet=xml.alphabet, trace=True)
    return LearningPipeline(xml.oracle, config=config).run(seeds)


def test_telemetry_wire_shape(traced):
    telemetry = traced.telemetry
    assert telemetry is not None
    assert telemetry["version"] == TELEMETRY_VERSION
    assert telemetry["spans"], "a traced run records spans"
    for span in telemetry["spans"]:
        assert set(span) >= {"id", "parent", "name", "cat", "ts", "dur",
                             "shard"}
    metrics = telemetry["metrics"]
    assert metrics["counters"]["oracle.calls"] > 0
    assert metrics["histograms"]["oracle.seconds"]["count"] > 0


def test_telemetry_round_trips_through_artifact_store(tmp_path, traced):
    path = tmp_path / "run.json"
    save_artifact(traced, path)
    loaded = load_artifact(path)
    assert loaded.schema_version == traced.schema_version
    assert loaded.telemetry == traced.telemetry
    # The telemetry is JSON all the way down (no live objects).
    assert json.loads(json.dumps(traced.telemetry)) == traced.telemetry


def test_spans_cover_pipeline_stages_and_shards(traced):
    spans = traced.telemetry["spans"]
    names = {span["name"] for span in spans}
    assert {"stage:validate", "stage:phase1", "stage:translate",
            "stage:finalize"} <= names
    shards = {span["shard"] for span in spans}
    assert "seed:0" in shards
    cats = {span["cat"] for span in spans}
    assert {"pipeline", "phase1", "oracle"} <= cats


def test_chrome_trace_is_valid(tmp_path, traced):
    out = tmp_path / "run.trace.json"
    write_chrome_trace(traced.telemetry, out)
    data = json.loads(out.read_text())
    assert data["displayTimeUnit"] == "ms"
    events = data["traceEvents"]
    assert events
    for event in events:
        assert event["ph"] in ("X", "M", "i")
        assert "pid" in event
        if event["ph"] != "M":
            assert event["ts"] >= 0
    # Every shard maps to a named process row.
    metadata = [e for e in events if e["ph"] == "M"]
    shards = {span["shard"] for span in traced.telemetry["spans"]}
    assert len(metadata) == len(shards)


def test_chrome_trace_reports_dropped_spans():
    tracer = Tracer(max_spans=1)
    with tracer.span("kept"):
        pass
    with tracer.span("dropped"):
        pass
    telemetry = build_telemetry(tracer, MetricsRegistry())
    assert telemetry["dropped_spans"] == 1
    assert chrome_trace(telemetry)["otherData"]["dropped_spans"] == 1


def test_span_structure_ignores_durations(traced):
    structure = span_structure(traced.telemetry)
    assert structure == sorted(structure)
    assert any(line.startswith("seed:0|") for line in structure)
    # Rebuilding from the same spans with zeroed durations is identical:
    # structure is names/nesting/shards only.
    stripped = {
        "version": TELEMETRY_VERSION,
        "spans": [
            dict(span, ts=0.0, dur=0.0)
            for span in traced.telemetry["spans"]
        ],
    }
    assert span_structure(stripped) == structure


def test_show_and_stats_render_traced_artifact(traced):
    from repro.evaluation.reporting import format_stats, summarize_artifact

    summary = summarize_artifact(traced)
    assert "telemetry:" in summary
    stats = format_stats(traced)
    assert "spans by shard" in stats
    assert "counters" in stats
    assert "oracle.calls" in stats


def test_stats_degrade_without_telemetry(xml, seeds):
    from repro.evaluation.reporting import format_stats, summarize_artifact

    config = GladeConfig(alphabet=xml.alphabet)
    artifact = LearningPipeline(xml.oracle, config=config).run(seeds[:1])
    assert artifact.telemetry is None
    assert "--trace" in format_stats(artifact)
    assert "telemetry:" not in summarize_artifact(artifact)
