"""Tests for the membership-oracle framework."""

import time

import pytest

from repro.languages.cfg import Grammar, Nonterminal, Production
from repro.languages.regex import Lit, star
from repro.learning.oracle import (
    BudgetOracle,
    CachingOracle,
    CountingOracle,
    DeadlineOracle,
    LearningTimeout,
    OracleBudgetExceeded,
    grammar_oracle,
    program_oracle,
    regex_oracle,
)


def base_oracle(text: str) -> bool:
    return text == "yes"


def test_counting_oracle_counts():
    oracle = CountingOracle(base_oracle)
    oracle("yes")
    oracle("no")
    oracle("yes")
    assert oracle.queries == 3


def test_caching_oracle_deduplicates():
    counting = CountingOracle(base_oracle)
    cached = CachingOracle(counting)
    for _ in range(5):
        assert cached("yes")
        assert not cached("no")
    assert counting.queries == 2
    assert cached.unique_queries == 2


def test_caching_oracle_respects_max_size():
    counting = CountingOracle(base_oracle)
    cached = CachingOracle(counting, max_size=1)
    cached("a")
    cached("b")  # not cached: over limit
    cached("b")
    assert counting.queries == 3


def test_budget_oracle_raises():
    oracle = BudgetOracle(base_oracle, budget=2)
    oracle("x")
    oracle("y")
    with pytest.raises(OracleBudgetExceeded):
        oracle("z")


def test_deadline_oracle_raises_after_deadline():
    oracle = DeadlineOracle(base_oracle, deadline=time.monotonic() - 1)
    with pytest.raises(LearningTimeout):
        oracle("x")


def test_deadline_oracle_passes_before_deadline():
    oracle = DeadlineOracle(base_oracle, deadline=time.monotonic() + 60)
    assert oracle("yes")


def test_grammar_oracle():
    s = Nonterminal("S")
    grammar = Grammar(s, [Production(s, ("ab",)), Production(s, ())])
    oracle = grammar_oracle(grammar)
    assert oracle("ab")
    assert oracle("")
    assert not oracle("a")


def test_regex_oracle():
    oracle = regex_oracle(star(Lit("ab")))
    assert oracle("abab")
    assert not oracle("aba")


def test_program_oracle():
    class FakeProgram:
        def accepts(self, text):
            return text.startswith("ok")

    oracle = program_oracle(FakeProgram())
    assert oracle("ok then")
    assert not oracle("nope")
