"""Tests for the membership-oracle framework."""

import time

import pytest

from repro.languages.cfg import Grammar, Nonterminal, Production
from repro.languages.regex import Lit, star
from repro.learning.oracle import (
    BudgetOracle,
    CachingOracle,
    CountingOracle,
    DeadlineOracle,
    LearningTimeout,
    OracleBudgetExceeded,
    grammar_oracle,
    program_oracle,
    query_all,
    query_many,
    regex_oracle,
    supports_concurrency,
)


def base_oracle(text: str) -> bool:
    return text == "yes"


def test_counting_oracle_counts():
    oracle = CountingOracle(base_oracle)
    oracle("yes")
    oracle("no")
    oracle("yes")
    assert oracle.queries == 3


def test_caching_oracle_deduplicates():
    counting = CountingOracle(base_oracle)
    cached = CachingOracle(counting)
    for _ in range(5):
        assert cached("yes")
        assert not cached("no")
    assert counting.queries == 2
    assert cached.unique_queries == 2


def test_caching_oracle_respects_max_size():
    counting = CountingOracle(base_oracle)
    cached = CachingOracle(counting, max_size=1)
    cached("a")
    cached("b")  # not cached: over limit
    cached("b")
    assert counting.queries == 3


def test_bounded_cache_unique_queries_counts_distinct_strings():
    """Repeated uncached strings must not inflate ``unique_queries``."""
    cached = CachingOracle(base_oracle, max_size=1)
    cached("a")
    for _ in range(3):
        cached("b")  # recomputed each time (cache full), one distinct string
    assert cached.unique_queries == 2


def test_budget_oracle_raises():
    oracle = BudgetOracle(base_oracle, budget=2)
    oracle("x")
    oracle("y")
    with pytest.raises(OracleBudgetExceeded):
        oracle("z")


def test_deadline_oracle_raises_after_deadline():
    oracle = DeadlineOracle(base_oracle, deadline=time.monotonic() - 1)
    with pytest.raises(LearningTimeout):
        oracle("x")


def test_deadline_oracle_passes_before_deadline():
    oracle = DeadlineOracle(base_oracle, deadline=time.monotonic() + 60)
    assert oracle("yes")


class _ConcurrentFake:
    """A fake batch-capable oracle that records how it was queried."""

    concurrent = True

    def __init__(self):
        self.single_calls = []
        self.batches = []

    def __call__(self, text):
        self.single_calls.append(text)
        return text == "yes"

    def query_many(self, texts):
        texts = list(texts)
        self.batches.append(texts)
        return [text == "yes" for text in texts]


class TestQueryBatching:
    def test_sequential_stack_is_not_concurrent(self):
        stack = CountingOracle(CachingOracle(base_oracle))
        assert not supports_concurrency(stack)

    def test_concurrency_flag_propagates_through_wrappers(self):
        stack = CountingOracle(
            CachingOracle(DeadlineOracle(_ConcurrentFake(), 1e18))
        )
        assert supports_concurrency(stack)

    def test_query_many_plain_callable_falls_back_to_loop(self):
        assert query_many(base_oracle, ["yes", "no"]) == [True, False]

    def test_query_many_sequential_stack_counts_per_query(self):
        counting = CountingOracle(base_oracle)
        assert query_many(counting, ["yes", "no", "yes"]) == [
            True,
            False,
            True,
        ]
        assert counting.queries == 3

    def test_query_many_concurrent_stack_forwards_batch(self):
        fake = _ConcurrentFake()
        counting = CountingOracle(CachingOracle(fake))
        assert query_many(counting, ["yes", "no"]) == [True, False]
        assert fake.batches == [["yes", "no"]]
        assert fake.single_calls == []
        assert counting.queries == 2

    def test_caching_query_many_deduplicates_batch(self):
        fake = _ConcurrentFake()
        cached = CachingOracle(fake)
        results = query_many(cached, ["yes", "no", "yes"])
        assert results == [True, False, True]
        assert fake.batches == [["yes", "no"]]  # duplicate asked once
        assert cached.unique_queries == 2
        # Second batch is answered fully from the cache.
        assert query_many(cached, ["no", "yes"]) == [False, True]
        assert fake.batches == [["yes", "no"]]

    def test_query_all_short_circuits_sequentially(self):
        calls = []

        def oracle(text):
            calls.append(text)
            return False

        assert not query_all(oracle, ["a", "b", "c"])
        assert calls == ["a"]
        assert query_all(oracle, [])

    def test_query_all_batches_on_concurrent_stack(self):
        fake = _ConcurrentFake()
        assert not query_all(fake, ["yes", "no", "yes"])
        assert fake.batches == [["yes", "no", "yes"]]
        assert query_all(fake, ["yes", "yes"])

    def test_budget_oracle_rejects_overrunning_batch(self):
        budget = BudgetOracle(base_oracle, budget=2)
        with pytest.raises(OracleBudgetExceeded):
            budget.query_many(["a", "b", "c"])
        assert budget.query_many(["yes", "no"]) == [True, False]
        with pytest.raises(OracleBudgetExceeded):
            budget.query_many(["x"])

    def test_deadline_oracle_batch_respects_deadline(self):
        expired = DeadlineOracle(base_oracle, deadline=time.monotonic() - 1)
        with pytest.raises(LearningTimeout):
            expired.query_many(["a"])
        live = DeadlineOracle(base_oracle, deadline=time.monotonic() + 60)
        assert live.query_many(["yes", "no"]) == [True, False]


def test_grammar_oracle():
    s = Nonterminal("S")
    grammar = Grammar(s, [Production(s, ("ab",)), Production(s, ())])
    oracle = grammar_oracle(grammar)
    assert oracle("ab")
    assert oracle("")
    assert not oracle("a")


def test_regex_oracle():
    oracle = regex_oracle(star(Lit("ab")))
    assert oracle("abab")
    assert not oracle("aba")


def test_program_oracle():
    class FakeProgram:
        def accepts(self, text):
            return text.startswith("ok")

    oracle = program_oracle(FakeProgram())
    assert oracle("ok then")
    assert not oracle("nope")
