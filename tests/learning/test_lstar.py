"""Tests for L-Star: exact learning with a perfect equivalence oracle,
approximate learning with the §8.2 sampling oracle."""

import random

import pytest

from repro.automata.determinize import regex_to_dfa
from repro.languages import regex as rx
from repro.languages.sampler import sample_regex
from repro.learning.lstar import (
    PerfectEquivalenceOracle,
    SamplingEquivalenceOracle,
    lstar,
)


def exact_learn(expr, alphabet):
    reference = regex_to_dfa(expr, alphabet)
    result = lstar(
        reference.accepts, PerfectEquivalenceOracle(reference), alphabet
    )
    return reference, result


class TestExactLearning:
    @pytest.mark.parametrize(
        "expr,alphabet",
        [
            (rx.star(rx.Lit("ab")), "ab"),
            (rx.concat(rx.star(rx.Lit("a")), rx.star(rx.Lit("b"))), "ab"),
            (rx.alt(rx.Lit("x"), rx.Lit("yy")), "xy"),
            (rx.star(rx.alt(rx.Lit("a"), rx.Lit("bb"))), "ab"),
            (rx.EPSILON, "ab"),
        ],
    )
    def test_learns_exactly(self, expr, alphabet):
        reference, result = exact_learn(expr, alphabet)
        assert result.dfa.equivalent(reference)

    def test_learned_dfa_is_minimal(self):
        reference, result = exact_learn(rx.star(rx.Lit("ab")), "ab")
        assert result.dfa.num_states() == reference.minimize().num_states()

    def test_counterexample_rounds_bounded(self):
        _, result = exact_learn(rx.star(rx.Lit("abc")), "abc")
        # Angluin's bound: at most n equivalence queries for n states.
        assert result.equivalence_rounds <= 6


class TestSamplingOracle:
    def test_accepts_after_n_samples_without_disagreement(self):
        target = regex_to_dfa(rx.star(rx.Lit("a")), "a")
        oracle = SamplingEquivalenceOracle(
            target.accepts, "a", n_samples=10, rng=random.Random(0)
        )
        assert oracle(target) is None

    def test_seeds_checked_first(self):
        target = regex_to_dfa(rx.Lit("abc"), "abc")
        wrong = regex_to_dfa(rx.Lit("a"), "abc")
        oracle = SamplingEquivalenceOracle(
            target.accepts, "abc", seeds=["abc"], rng=random.Random(0)
        )
        assert oracle(wrong) == "abc"

    def test_positive_sampler_finds_counterexamples(self):
        expr = rx.star(rx.Lit("ab"))
        target = regex_to_dfa(expr, "ab")
        empty_language = regex_to_dfa(rx.EMPTY, "ab")
        rng = random.Random(1)
        oracle = SamplingEquivalenceOracle(
            target.accepts,
            "ab",
            positive_sampler=lambda: sample_regex(expr, rng),
            rng=rng,
        )
        counterexample = oracle(empty_language)
        assert counterexample is not None
        assert target.accepts(counterexample)

    def test_end_to_end_with_sampling(self):
        expr = rx.star(rx.alt(rx.Lit("a"), rx.Lit("b")))
        target = regex_to_dfa(expr, "ab")
        rng = random.Random(3)
        oracle = SamplingEquivalenceOracle(
            target.accepts,
            "ab",
            positive_sampler=lambda: sample_regex(expr, rng),
            n_samples=50,
            rng=rng,
        )
        result = lstar(target.accepts, oracle, "ab")
        # Σ* is a one-state language; sampling finds it reliably.
        assert result.dfa.equivalent(target)
