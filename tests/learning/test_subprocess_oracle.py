"""Tests for the subprocess oracle and the CLI (real-executable mode)."""

import sys

import pytest

from repro.cli import main as cli_main
from repro.learning.oracle import CachingOracle, SubprocessOracle
from repro.learning.resilience import (
    OracleFailedError,
    OracleTransientError,
)

# A tiny validator run as a real subprocess: accepts strings of a's.
_VALIDATOR = (
    "import sys; text = sys.stdin.read(); "
    "sys.exit(0 if text and set(text) <= {'a'} else 1)"
)


def _oracle(**kwargs) -> SubprocessOracle:
    return SubprocessOracle(
        [sys.executable, "-c", _VALIDATOR], **kwargs
    )


class TestSubprocessOracle:
    def test_accepts_valid_input(self):
        assert _oracle()("aaa")

    def test_rejects_invalid_input(self):
        assert not _oracle()("abc")
        assert not _oracle()("")

    def test_missing_binary_raises_transient(self):
        # Historically a spawn failure was silently treated as a
        # rejection, so a deleted/missing binary corrupted the learned
        # grammar. It is now a classified transient error.
        oracle = SubprocessOracle(["/nonexistent/binary-xyz"])
        with pytest.raises(OracleTransientError) as excinfo:
            oracle("anything")
        assert excinfo.value.cause == "spawn"
        assert oracle.drain_faults() == {"spawn": 1}
        assert oracle.drain_faults() == {}

    def test_enoent_mid_run_never_cached_as_reject(self, tmp_path):
        # Regression for the satellite: the oracle binary disappears
        # between calls. The spawn failure must surface as a transient
        # error — and a caching wrapper must not memoize a False for it.
        body = (
            "#!{}\n"
            "import sys\n"
            "sys.exit(0 if sys.stdin.read().startswith('ok') else 1)\n"
        ).format(sys.executable)
        script = tmp_path / "validator"
        script.write_text(body)
        script.chmod(0o755)
        oracle = SubprocessOracle([str(script)])
        cached = CachingOracle(oracle)
        assert cached("ok")
        script.unlink()
        with pytest.raises(OracleTransientError) as excinfo:
            cached("ok-again")
        assert excinfo.value.cause == "spawn"
        # The failed query left no cache entry: restoring the binary
        # lets the same query succeed.
        script.write_text(body)
        script.chmod(0o755)
        assert cached("ok-again")

    def test_timeout_verdict_reject_counts_fault(self):
        oracle = SubprocessOracle(
            [sys.executable, "-c", "import time; time.sleep(30)"],
            timeout_seconds=0.1,
        )
        assert not oracle("anything")
        assert oracle.drain_faults() == {
            "timeout": 1, "timeout_reject": 1,
        }

    def test_timeout_verdict_retry_raises_transient(self):
        oracle = SubprocessOracle(
            [sys.executable, "-c", "import time; time.sleep(30)"],
            timeout_seconds=0.1,
            timeout_verdict="retry",
        )
        with pytest.raises(OracleTransientError) as excinfo:
            oracle("anything")
        assert excinfo.value.cause == "timeout"

    def test_timeout_verdict_error_fails_fast(self):
        oracle = SubprocessOracle(
            [sys.executable, "-c", "import time; time.sleep(30)"],
            timeout_seconds=0.1,
            timeout_verdict="error",
        )
        with pytest.raises(OracleFailedError) as excinfo:
            oracle("anything")
        assert excinfo.value.cause == "timeout"

    def test_bad_timeout_verdict_rejected(self):
        with pytest.raises(ValueError):
            SubprocessOracle(["true"], timeout_verdict="explode")

    def test_file_input_mode(self):
        script = (
            "import sys; text = open(sys.argv[1]).read(); "
            "sys.exit(0 if text == 'ok' else 1)"
        )
        oracle = SubprocessOracle(
            [sys.executable, "-c", script, "{input}"],
            input_mode="file",
        )
        assert oracle("ok")
        assert not oracle("nope")

    def test_error_marker(self):
        script = (
            "import sys; text = sys.stdin.read();\n"
            "if 'x' in text: print('parse error', file=sys.stderr)\n"
            "sys.exit(0)"
        )
        oracle = SubprocessOracle(
            [sys.executable, "-c", script], error_marker="parse error"
        )
        assert oracle("clean")
        assert not oracle("xx")

    def test_bad_input_mode_rejected(self):
        with pytest.raises(ValueError):
            SubprocessOracle(["true"], input_mode="socket")

    def test_bad_max_workers_rejected(self):
        with pytest.raises(ValueError):
            SubprocessOracle(["true"], max_workers=0)

    def test_concurrent_flag(self):
        # Concurrency is an explicit opt-in: the default stays
        # sequential to preserve short-circuit query accounting.
        assert not _oracle().concurrent
        assert _oracle(max_workers=4).concurrent

    def test_query_many_runs_batch(self):
        oracle = _oracle(max_workers=4)
        texts = ["aaa", "abc", "", "a", "aa"]
        assert oracle.query_many(texts) == [True, False, False, True, True]

    def test_query_many_single_item(self):
        assert _oracle().query_many(["aa"]) == [True]
        assert _oracle().query_many([]) == []

    def test_close_releases_pool_and_later_batches_recreate_it(self):
        oracle = _oracle(max_workers=2)
        assert oracle.query_many(["aa", "bc"]) == [True, False]
        oracle.close()
        assert oracle._pool is None
        assert oracle.query_many(["a", "c"]) == [True, False]
        oracle.close()

    def test_context_manager_closes_pool(self):
        with _oracle(max_workers=2) as oracle:
            assert oracle.query_many(["aa", "bc"]) == [True, False]
        assert oracle._pool is None

    def test_successive_batches_share_one_pool(self):
        # Regression: the lazily created pool must be reused across
        # batches, not rebuilt per batch (the learner issues thousands
        # of small batches; per-batch pool setup would dominate).
        oracle = _oracle(max_workers=2)
        assert oracle._pool is None  # created lazily, not in __init__
        assert oracle.query_many(["aa", "bc"]) == [True, False]
        first_pool = oracle._pool
        assert first_pool is not None
        assert oracle.query_many(["a", "aaa"]) == [True, True]
        assert oracle._pool is first_pool
        oracle.close()

    def test_pickle_roundtrip_drops_pool(self):
        # Process-backend workers receive a pickled copy; the thread
        # pool is process-local state and must not travel with it.
        import pickle

        oracle = _oracle(max_workers=2)
        assert oracle.query_many(["aa", "bc"]) == [True, False]
        assert oracle._pool is not None
        clone = pickle.loads(pickle.dumps(oracle))
        assert clone._pool is None
        assert clone.max_workers == 2
        assert clone("aa") and not clone("bc")
        assert clone.query_many(["a", "c"]) == [True, False]
        clone.close()
        oracle.close()


class TestCLI:
    def test_learn_from_inline_seed(self, capsys, tmp_path):
        command = "{} -c \"{}\"".format(sys.executable, _VALIDATOR)
        code = cli_main(
            [
                "learn",
                "--command", command,
                "--seed", "aa",
                "--alphabet", "ab",
                "--samples", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "phase-one regex" in out
        assert "sample:" in out

    def test_learn_from_seed_file(self, capsys, tmp_path):
        seed_file = tmp_path / "seeds.txt"
        seed_file.write_text("a\naa\n")
        command = "{} -c \"{}\"".format(sys.executable, _VALIDATOR)
        code = cli_main(
            [
                "learn",
                "--command", command,
                "--seed-file", str(seed_file),
                "--alphabet", "ab",
                "--no-chargen",
                "--samples", "0",
            ]
        )
        assert code == 0
        assert "oracle queries" in capsys.readouterr().out

    def test_no_seeds_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["learn", "--command", "true"])
