"""Tests for RPNI: state merging, consistency, in-the-limit behavior."""

import time

import pytest

from repro.automata.determinize import regex_to_dfa
from repro.languages import regex as rx
from repro.learning.oracle import LearningTimeout
from repro.learning.rpni import rpni


class TestCharacteristicSamples:
    def test_learns_ab_star(self):
        positives = ["", "ab", "abab", "ababab"]
        negatives = ["a", "b", "ba", "aab", "abb", "aba", "abba", "bab"]
        result = rpni(positives, negatives, "ab")
        reference = regex_to_dfa(rx.star(rx.Lit("ab")), "ab")
        assert result.dfa.equivalent(reference)

    def test_learns_even_as(self):
        # A characteristic sample: kernel prefixes {ε, a, b, aa, ab}
        # crossed with separating suffixes {ε, a}.
        positives = ["", "b", "aa", "aba", "bb", "aab"]
        negatives = ["a", "ab", "ba", "aaa", "bab", "abb"]
        result = rpni(positives, negatives, "ab")
        reference = regex_to_dfa(
            # (b | ab*a)* — even number of a's.
            rx.star(
                rx.alt(
                    rx.Lit("b"),
                    rx.concat(
                        rx.Lit("a"), rx.star(rx.Lit("b")), rx.Lit("a")
                    ),
                )
            ),
            "ab",
        )
        assert result.dfa.equivalent(reference)


class TestConsistency:
    def test_positives_always_accepted(self):
        positives = ["x", "xy", "xyy"]
        negatives = ["y", "yx"]
        result = rpni(positives, negatives, "xy")
        for text in positives:
            assert result.dfa.accepts(text)

    def test_negatives_always_rejected(self):
        positives = ["a", "aa", "aaa", "b", "ab"]
        negatives = ["ba", "bb"]
        result = rpni(positives, negatives, "ab")
        for text in negatives:
            assert not result.dfa.accepts(text)

    def test_overlapping_samples_rejected(self):
        with pytest.raises(ValueError):
            rpni(["a"], ["a"], "a")


class TestBehavior:
    def test_no_negatives_collapses_hard(self):
        # With no negatives every merge succeeds: maximal generalization.
        result = rpni(["ab", "abab"], [], "ab")
        assert result.dfa.num_states() == 1

    def test_merge_counters(self):
        result = rpni(
            ["", "ab", "abab"], ["a", "b", "ba", "aa"], "ab"
        )
        assert result.merges_accepted + result.merges_rejected > 0

    def test_deadline_raises(self):
        positives = ["ab" * n for n in range(30)]
        negatives = ["a" + "ab" * n for n in range(30)]
        with pytest.raises(LearningTimeout):
            rpni(
                positives,
                negatives,
                "ab",
                deadline=time.monotonic() - 1.0,
            )
