"""Tests for the fault-tolerance layer: retries, breaker, chaos."""

import pickle

import pytest

from repro.learning.oracle import CountingOracle
from repro.learning.resilience import (
    ChaosOracle,
    FaultPlan,
    OracleFailedError,
    OracleTransientError,
    ResilientOracle,
    RetryPolicy,
    drain_fault_counters,
    format_fault_spec,
    parse_fault_spec,
)


class FlakyOracle:
    """Accepts 'a'* but raises a transient error on planned calls."""

    def __init__(self, fail_calls=(), cause="spawn"):
        self.fail_calls = set(fail_calls)
        self.cause = cause
        self.calls = 0

    def __call__(self, text):
        call = self.calls
        self.calls += 1
        if call in self.fail_calls:
            raise OracleTransientError(
                self.cause, "planned failure at call {}".format(call)
            )
        return bool(text) and set(text) <= {"a"}


def fast_policy(**kwargs):
    kwargs.setdefault("base_delay", 0.0)
    return RetryPolicy(**kwargs)


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(base_delay=0.1, seed=3)
        assert policy.delay(0, "x") == policy.delay(0, "x")
        assert policy.delay(0, "x") != policy.delay(1, "x")
        assert policy.delay(0, "x") != policy.delay(0, "y")

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, max_delay=0.4, jitter=0.0
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.4)

    def test_jitter_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25)
        for attempt in range(4):
            base = min(0.1 * 2 ** attempt, policy.max_delay)
            assert base <= policy.delay(attempt, "q") <= base * 1.25

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(breaker_threshold=-1)


class TestResilientOracle:
    def test_transparent_on_healthy_oracle(self):
        resilient = ResilientOracle(FlakyOracle(), fast_policy())
        assert resilient("aaa")
        assert not resilient("ab")
        assert resilient.drain_faults() == {}

    def test_retries_through_transient_failures(self):
        flaky = FlakyOracle(fail_calls={0, 1})
        resilient = ResilientOracle(
            flaky, fast_policy(max_attempts=3)
        )
        assert resilient("aa")
        assert flaky.calls == 3
        faults = resilient.drain_faults()
        assert faults == {"transient.spawn": 2, "retries": 2}

    def test_exhausted_retries_fail_terminally(self):
        flaky = FlakyOracle(fail_calls={0, 1, 2})
        resilient = ResilientOracle(
            flaky, fast_policy(max_attempts=3)
        )
        with pytest.raises(OracleFailedError) as excinfo:
            resilient("aa")
        assert excinfo.value.attempts == 3
        assert excinfo.value.cause == "spawn"
        assert resilient.drain_faults()["gave_up"] == 1

    def test_retry_is_invisible_to_counting_layer(self):
        # Stack order: counting wraps resilience, so a retried query
        # still counts once — the determinism contract's requirement.
        flaky = FlakyOracle(fail_calls={1})
        counting = CountingOracle(
            ResilientOracle(flaky, fast_policy(max_attempts=3))
        )
        assert counting("aa")
        assert not counting("b")
        assert counting.queries == 2
        assert flaky.calls == 3

    def test_breaker_opens_after_consecutive_failures(self):
        flaky = FlakyOracle(fail_calls=set(range(100)))
        resilient = ResilientOracle(
            flaky,
            fast_policy(max_attempts=2, breaker_threshold=4),
        )
        for _ in range(2):  # 2 attempts each = 4 consecutive failures
            with pytest.raises(OracleFailedError):
                resilient("aa")
        assert resilient.breaker_open
        calls_before = flaky.calls
        with pytest.raises(OracleFailedError) as excinfo:
            resilient("aa")
        assert excinfo.value.cause == "breaker"
        assert flaky.calls == calls_before  # fast fail: no new attempt
        assert resilient.drain_faults()["breaker_fastfail"] == 1

    def test_success_resets_consecutive_count(self):
        flaky = FlakyOracle(fail_calls={0, 2, 4})
        resilient = ResilientOracle(
            flaky,
            fast_policy(max_attempts=2, breaker_threshold=3),
        )
        for _ in range(3):
            assert resilient("aa")
        assert not resilient.breaker_open

    def test_breaker_disabled_at_zero(self):
        flaky = FlakyOracle(fail_calls=set(range(50)))
        resilient = ResilientOracle(
            flaky,
            fast_policy(max_attempts=2, breaker_threshold=0),
        )
        for _ in range(10):
            with pytest.raises(OracleFailedError):
                resilient("aa")
        assert not resilient.breaker_open

    def test_query_many_sequential_path(self):
        flaky = FlakyOracle(fail_calls={1})
        resilient = ResilientOracle(
            flaky, fast_policy(max_attempts=3)
        )
        assert resilient.query_many(["aa", "b", "a"]) == [
            True, False, True,
        ]

    def test_pickle_roundtrip(self):
        resilient = ResilientOracle(FlakyOracle(), fast_policy())
        resilient._count_fault("retries")
        clone = pickle.loads(pickle.dumps(resilient))
        assert clone("aaa")
        assert clone.drain_faults() == {}  # counters do not travel


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = parse_fault_spec("transient@3,9;timeout@5;kill@120")
        assert plan.transient == frozenset({3, 9})
        assert plan.timeout == frozenset({5})
        assert plan.kill == frozenset({120})
        assert parse_fault_spec(format_fault_spec(plan)) == plan

    def test_parse_rejects_garbage(self):
        for bad in ("bogus@1", "transient", "transient@x", "timeout@-1"):
            with pytest.raises(ValueError):
                parse_fault_spec(bad)

    def test_empty(self):
        assert FaultPlan().empty()
        assert not parse_fault_spec("transient@0").empty()
        assert parse_fault_spec("").empty()

    def test_sampled_is_deterministic(self):
        a = FaultPlan.sampled(n_transient=4, n_timeout=2, seed=7)
        b = FaultPlan.sampled(n_transient=4, n_timeout=2, seed=7)
        assert a == b
        assert a != FaultPlan.sampled(n_transient=4, n_timeout=2, seed=8)
        assert len(a.transient) == 4
        assert all(0 <= i < 256 for i in a.transient | a.timeout)


class TestChaosOracle:
    def test_injects_transient_at_planned_indices(self):
        chaos = ChaosOracle(
            FlakyOracle(), parse_fault_spec("transient@1")
        )
        assert chaos("aa")  # invocation 0: healthy
        with pytest.raises(OracleTransientError) as excinfo:
            chaos("aa")  # invocation 1: injected
        assert excinfo.value.cause == "injected"
        assert chaos("aa")  # invocation 2: healthy again
        assert chaos.drain_faults() == {"injected.transient": 1}

    def test_injected_faults_absorbed_by_resilient_layer(self):
        # The full stack: injected faults are retried away, verdicts
        # unchanged versus a chaos-free run.
        flaky = FlakyOracle()
        chaos = ChaosOracle(
            flaky, parse_fault_spec("transient@1;timeout@3")
        )
        resilient = ResilientOracle(chaos, fast_policy(max_attempts=3))
        assert [resilient(t) for t in ("aa", "b", "a", "aa")] == [
            True, False, True, True,
        ]
        faults = drain_fault_counters(resilient)
        assert faults["injected.transient"] == 1
        assert faults["injected.timeout"] == 1
        assert faults["retries"] == 2

    def test_timeout_verdict_reject_returns_false(self):
        chaos = ChaosOracle(
            FlakyOracle(),
            parse_fault_spec("timeout@0"),
            timeout_verdict="reject",
        )
        assert not chaos("aa")  # forced reject, oracle never asked
        assert chaos.drain_faults() == {
            "injected.timeout": 1, "timeout_reject": 1,
        }

    def test_timeout_verdict_error_fails_fast(self):
        chaos = ChaosOracle(
            FlakyOracle(),
            parse_fault_spec("timeout@0"),
            timeout_verdict="error",
        )
        with pytest.raises(OracleFailedError):
            chaos("aa")

    def test_bad_timeout_verdict_rejected(self):
        with pytest.raises(ValueError):
            ChaosOracle(
                FlakyOracle(), FaultPlan(), timeout_verdict="maybe"
            )

    def test_kill_indices_inert_in_main_process(self):
        # Kill entries only fire inside pool workers; in the main
        # process the call passes through to the real oracle.
        chaos = ChaosOracle(
            FlakyOracle(),
            parse_fault_spec("kill@0", marker_dir="/tmp"),
        )
        assert chaos("aa")

    def test_drain_walks_the_whole_stack(self):
        chaos = ChaosOracle(
            FlakyOracle(), parse_fault_spec("transient@0")
        )
        resilient = ResilientOracle(chaos, fast_policy(max_attempts=2))
        assert resilient("aa")
        totals = drain_fault_counters(resilient)
        assert totals["injected.transient"] == 1
        assert totals["transient.injected"] == 1
        assert totals["retries"] == 1
        assert drain_fault_counters(resilient) == {}
